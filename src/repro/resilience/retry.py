"""Retry policies: exponential backoff with deterministic jitter.

The sweep runner retries failing points a bounded number of times,
sleeping ``base_delay * 2**attempt`` (capped at ``max_delay``) plus a
seeded jitter between attempts.  Jitter is derived from the policy seed
and the call label, not from global randomness, so two runs of the same
sweep back off identically -- determinism is a repo-wide invariant
(figures must be bit-identical across serial/parallel/resumed runs, and
the backoff schedule should be reproducible in logs too).
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from .. import obs
from ..errors import (
    CapacityError,
    ConfigurationError,
    SweepExecutionError,
)

#: Environment knobs picked up by :meth:`RetryPolicy.from_env`.
RETRIES_ENV = "REPRO_RETRIES"
POINT_TIMEOUT_ENV = "REPRO_POINT_TIMEOUT"
POOL_RESTARTS_ENV = "REPRO_MAX_POOL_RESTARTS"
BASE_DELAY_ENV = "REPRO_RETRY_BASE_DELAY"

#: Exceptions that retrying can never fix: configuration mistakes and
#: the paper's capacity skips (already converted to notes upstream).
NO_RETRY: Tuple[Type[BaseException], ...] = (
    CapacityError,
    ConfigurationError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Budget and pacing for retrying sweep points.

    Attributes:
        max_attempts: total tries per point (1 = no retry).
        base_delay: first backoff sleep, seconds.
        max_delay: backoff cap, seconds.
        jitter: fraction of the delay randomized (0 disables jitter).
        seed: jitter RNG seed (combined with the call label).
        point_timeout: seconds a pooled point may run before it is
            declared lost (covers both hangs and worker crashes, whose
            results simply never arrive).  ``None`` disables timeouts --
            only safe when faults cannot occur.
        max_pool_restarts: pool rebuilds tolerated before the sweep
            degrades to serial execution for the remaining points.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    point_timeout: Optional[float] = 300.0
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ConfigurationError(
                f"point_timeout must be positive, got {self.point_timeout}"
            )
        if self.max_pool_restarts < 0:
            raise ConfigurationError(
                f"max_pool_restarts must be >= 0, got {self.max_pool_restarts}"
            )

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy with defaults overridden by ``REPRO_*`` variables."""
        kwargs = {}
        if os.environ.get(RETRIES_ENV):
            kwargs["max_attempts"] = int(os.environ[RETRIES_ENV])
        if os.environ.get(POINT_TIMEOUT_ENV):
            timeout = float(os.environ[POINT_TIMEOUT_ENV])
            kwargs["point_timeout"] = timeout if timeout > 0 else None
        if os.environ.get(POOL_RESTARTS_ENV):
            kwargs["max_pool_restarts"] = int(os.environ[POOL_RESTARTS_ENV])
        if os.environ.get(BASE_DELAY_ENV):
            kwargs["base_delay"] = float(os.environ[BASE_DELAY_ENV])
        return cls(**kwargs)

    def backoff(self, attempt: int, label: str = "") -> float:
        """Sleep before retry number ``attempt`` (1-based), seconds.

        Exponential in the attempt number, capped, with deterministic
        jitter: the same (seed, label, attempt) always yields the same
        delay, while different labels decorrelate so simultaneous
        retries don't stampede in lockstep.
        """
        if attempt < 1:
            return 0.0
        # Cap the exponent before exponentiating: 2 ** (attempt - 1) at
        # large attempt counts builds a multi-thousand-bit integer just
        # to be discarded by the min().  1023 is the largest finite
        # float exponent; any positive base_delay times 2.0**1023
        # clears max_delay (an inf product still min()s correctly), so
        # the capped delay is exactly the uncapped one.
        exponent = min(attempt - 1, 1023)
        delay = min(self.base_delay * (2.0**exponent), self.max_delay)
        if self.jitter and delay:
            # str seeds hash stably (sha512), unlike tuples under
            # PYTHONHASHSEED randomization -- jitter must reproduce
            # across processes.
            rng = random.Random(f"{self.seed}:{label}:{attempt}")
            delay *= 1 - self.jitter + self.jitter * rng.random()
        return delay


# Run-scoped default policy: the runner/bench CLI installs the policy it
# parsed from flags here, and the sweep executor picks it up without
# every figure module threading it through.
_policy: Optional[RetryPolicy] = None


@contextmanager
def configured(policy: Optional[RetryPolicy]):
    """Scope a default :class:`RetryPolicy` to a with-block."""
    global _policy
    previous = _policy
    _policy = policy
    try:
        yield
    finally:
        _policy = previous


def active_policy() -> RetryPolicy:
    """The scoped policy if one is configured, else env-derived defaults."""
    return _policy if _policy is not None else RetryPolicy.from_env()


def with_retry(
    func: Callable[[], object],
    policy: RetryPolicy,
    label: str = "",
    no_retry: Tuple[Type[BaseException], ...] = NO_RETRY,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``func`` under ``policy``; raise after the budget is spent.

    Exceptions in ``no_retry`` (capacity/configuration) propagate
    immediately -- retrying cannot fix them.  Anything else is retried
    with backoff; once ``max_attempts`` tries have failed, the last
    error is wrapped in :class:`~repro.errors.SweepExecutionError` so
    callers can distinguish "gave up" from a first-try bug.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        if attempt > 1:
            if obs.enabled():
                obs.add("resilience.retries")
            with obs.span(
                "retry.backoff", attempt=attempt - 1, label=label or "call"
            ):
                sleep(policy.backoff(attempt - 1, label))
        try:
            return func()
        except no_retry:
            raise
        except Exception as error:  # noqa: BLE001 -- retry layer by design
            last_error = error
    raise SweepExecutionError(
        f"{label or 'call'} failed after {policy.max_attempts} attempts: "
        f"{type(last_error).__name__}: {last_error}"
    ) from last_error
