"""Scripted chaos: declarative fault schedules for the serving layer.

A :class:`ChaosSchedule` is a JSON document of timed fault events
against the replicated serving simulation -- *kill replica r of shard s
at simulated time t*, *wedge shard s for d seconds*, *corrupt probe
batch b* -- replayable bit-identically because every event keys off
simulated quantities (the logical clock, the executor's window
sequence), never the host.

The harness around it (:func:`run_serve_under_chaos`,
:func:`check_invariance`, :func:`check_replay`) runs one serving
workload clean and under the schedule and asserts the serving layer's
central robustness contract:

* **Invariance** -- served positions under any schedule that leaves the
  fallback reachable are element-equal to the fault-free run (replicas
  and the fallback all answer in global R positions, so failover can
  reorder *work*, never *results*).  With ``update_fraction > 0`` the
  same contract covers mixed read/write traffic: updates are
  host-authoritative (applied to every replica and the fallback, never
  routed through a fault site), so a kill schedule stretches read
  latency but cannot lose a write -- and the chaotic run must still
  answer element-equal to both the fault-free run and the
  sorted-array-with-updates oracle.
* **Replay** -- the same seed and schedule reproduce the run
  bit-identically, including the simulated-clock timeline of
  failure/failover/rebuild/recovery transitions.

Determinism rules a schedule must respect (see TESTING.md):

* event times are simulated seconds, compared against the service's
  logical clock at dispatch;
* ``corrupt`` events name a window by the executor's global execution
  sequence (0-based), which is itself deterministic;
* the harness runs with an unbounded admission backlog, so chaos
  stretches latency without flipping admission decisions -- the one
  knob that could legitimately change *which* requests get served.

``repro chaos`` (see :mod:`repro.__main__`) runs a schedule file
through the harness and writes the event-log artifact CI uploads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ConfigurationError, InjectedFault
from ..ioutil import atomic_write_json

#: Schema tag of schedule documents (bump on incompatible change).
SCHEMA = "repro-chaos/1"
#: Schema tag of the event-log artifact the CLI writes.
LOG_SCHEMA = "repro-chaos-log/1"

_KINDS = ("kill", "wedge", "corrupt")


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted fault.

    Attributes:
        kind: ``kill`` (replica fails every probe from ``at`` until it
            next completes a rebuild), ``wedge`` (every replica of the
            shard -- or one, if ``replica`` >= 0 -- fails probes during
            ``[at, at + duration)``), or ``corrupt`` (the probe of
            execution-sequence window ``batch`` fails once, modelling a
            corrupted batch the retry path must reissue).
        at: simulated time the fault arms, seconds.
        shard: target shard (kill/wedge).
        replica: target replica (kill; wedge optional, -1 = all).
        duration: wedge length in simulated seconds.
        batch: global window execution sequence targeted by corrupt.
    """

    kind: str
    at: float = 0.0
    shard: int = -1
    replica: int = -1
    duration: float = 0.0
    batch: int = -1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown chaos kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.at < 0:
            raise ConfigurationError(
                f"chaos event cannot arm before time zero, got {self.at}"
            )
        if self.kind == "kill" and (self.shard < 0 or self.replica < 0):
            raise ConfigurationError(
                "kill events need shard >= 0 and replica >= 0, got "
                f"shard={self.shard} replica={self.replica}"
            )
        if self.kind == "wedge":
            if self.shard < 0:
                raise ConfigurationError(
                    f"wedge events need shard >= 0, got {self.shard}"
                )
            if self.duration <= 0:
                raise ConfigurationError(
                    f"wedge duration must be positive, got {self.duration}"
                )
        if self.kind == "corrupt" and self.batch < 0:
            raise ConfigurationError(
                f"corrupt events need batch >= 0, got {self.batch}"
            )

    def as_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"kind": self.kind, "at": self.at}
        if self.shard >= 0:
            entry["shard"] = self.shard
        if self.replica >= 0:
            entry["replica"] = self.replica
        if self.kind == "wedge":
            entry["duration"] = self.duration
        if self.kind == "corrupt":
            entry["batch"] = self.batch
        return entry

    @staticmethod
    def from_dict(entry: Dict[str, Any]) -> "ChaosEvent":
        known = {"kind", "at", "shard", "replica", "duration", "batch"}
        extra = sorted(set(entry) - known)
        if extra:
            raise ConfigurationError(
                f"unknown chaos event fields {extra} in {entry!r}"
            )
        if "kind" not in entry:
            raise ConfigurationError(f"chaos event missing 'kind': {entry!r}")
        return ChaosEvent(
            kind=str(entry["kind"]),
            at=float(entry.get("at", 0.0)),
            shard=int(entry.get("shard", -1)),
            replica=int(entry.get("replica", -1)),
            duration=float(entry.get("duration", 0.0)),
            batch=int(entry.get("batch", -1)),
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered list of scripted fault events."""

    events: Tuple[ChaosEvent, ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "events": [event.as_dict() for event in self.events],
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "ChaosSchedule":
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ConfigurationError(
                f"chaos schedule schema {schema!r} != expected {SCHEMA!r}"
            )
        events = payload.get("events")
        if not isinstance(events, list):
            raise ConfigurationError(
                "chaos schedule needs an 'events' list"
            )
        return ChaosSchedule(
            events=tuple(ChaosEvent.from_dict(entry) for entry in events)
        )

    @staticmethod
    def load(path: str) -> "ChaosSchedule":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"cannot read chaos schedule {path}: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"chaos schedule {path} is not a JSON object"
            )
        return ChaosSchedule.from_dict(payload)

    def dump(self, path: str) -> str:
        return atomic_write_json(path=path, payload=self.as_dict())


class ChaosController:
    """Replays a schedule against the replicated executor's probes.

    The executor consults :meth:`check_probe` before every probe
    attempt and calls :meth:`on_restart` when a rebuilt replica
    rejoins; all decisions are pure functions of (simulated time,
    window sequence, restart history), so a schedule replays
    bit-identically.
    """

    def __init__(self, schedule: ChaosSchedule):
        self.schedule = schedule
        #: Kill events cleared by a completed rebuild of their target.
        self._cleared_kills: Set[int] = set()
        #: Corrupt events that already fired (they fire exactly once).
        self._fired_corrupts: Set[int] = set()
        #: (time, description) log of every injection, in fire order.
        self.injections: List[Tuple[float, str]] = []

    def check_probe(
        self, shard: int, replica: int, now: float, window_seq: int
    ) -> None:
        """Raise :class:`InjectedFault` if any scripted fault is due."""
        for index, event in enumerate(self.schedule.events):
            if event.kind == "kill":
                if (
                    index not in self._cleared_kills
                    and event.shard == shard
                    and event.replica == replica
                    and now >= event.at
                ):
                    self._inject(
                        now, f"kill[{index}] shard{shard}r{replica}"
                    )
            elif event.kind == "wedge":
                if (
                    event.shard == shard
                    and event.replica in (-1, replica)
                    and event.at <= now < event.at + event.duration
                ):
                    self._inject(
                        now, f"wedge[{index}] shard{shard}r{replica}"
                    )
            else:  # corrupt
                if (
                    index not in self._fired_corrupts
                    and event.batch == window_seq
                ):
                    self._fired_corrupts.add(index)
                    self._inject(
                        now,
                        f"corrupt[{index}] window{window_seq} "
                        f"shard{shard}r{replica}",
                    )

    def _inject(self, now: float, description: str) -> None:
        self.injections.append((now, description))
        raise InjectedFault(f"chaos {description} at t={now:.9f}")

    def on_restart(self, shard: int, replica: int, now: float) -> None:
        """A rebuilt replica rejoined: clear its armed kill events.

        A kill models a crashed replica; once recovery rebuilt it, the
        same event must not re-kill it forever (schedules wanting a
        re-kill script a second event at a later time).
        """
        for index, event in enumerate(self.schedule.events):
            if (
                event.kind == "kill"
                and event.shard == shard
                and event.replica == replica
                and event.at <= now
            ):
                self._cleared_kills.add(index)


# ----------------------------------------------------------------------
# The harness: one serving workload, with or without a schedule.
# ----------------------------------------------------------------------

#: Admission backlog used by the harness: effectively unbounded, so a
#: schedule can stretch latency but never flip an admission decision
#: (the determinism rule that makes result invariance well-defined).
UNBOUNDED_BACKLOG = 2**62


@dataclass
class ChaosRunResult:
    """Everything one harness run produced."""

    positions: np.ndarray
    makespan_seconds: float
    timeline: List[Dict[str, Any]]
    fallback_windows: int
    failovers: int
    recoveries: int
    deferrals: int
    injections: List[Tuple[float, str]] = field(default_factory=list)
    update_tuples: int = 0
    compactions: int = 0
    compactions_completed: int = 0

    def summary(self) -> Dict[str, Any]:
        return {
            "makespan_seconds": round(self.makespan_seconds, 9),
            "fallback_windows": self.fallback_windows,
            "failovers": self.failovers,
            "recoveries": self.recoveries,
            "deferred_windows": self.deferrals,
            "health_events": len(self.timeline),
            "injections": len(self.injections),
            "update_tuples": self.update_tuples,
            "compactions": self.compactions,
            "compactions_completed": self.compactions_completed,
        }


def run_serve_under_chaos(
    schedule: Optional[ChaosSchedule] = None,
    shards: int = 2,
    replicas: int = 2,
    index: str = "binary-search",
    replica_indexes: Optional[Sequence[str]] = None,
    r_tuples: int = 2**12,
    requests: int = 16,
    request_tuples: int = 256,
    window_kib: int = 4,
    zipf_theta: float = 0.0,
    seed: int = 42,
    update_fraction: float = 0.0,
) -> ChaosRunResult:
    """Serve one deterministic workload, optionally under a schedule.

    ``schedule=None`` is the fault-free reference run.  The workload,
    plan, and arrival spacing are pure functions of the arguments, so
    two calls with equal arguments are bit-identical -- the property
    :func:`check_replay` asserts.  ``update_fraction > 0`` interleaves
    update requests (the same stream generator the bench uses), checks
    every served answer against the sorted-array-with-updates oracle,
    and lets priced compactions fire mid-schedule.
    """
    # Imported here, not at module top: bench imports this module
    # lazily for its --chaos-schedule flag, and the resilience package
    # must stay importable without the serve layer's numpy machinery.
    from ..serve.bench import (
        INDEX_BY_NAME,
        _arrival_interval,
        _check_mixed_against_oracle,
        _serve_workload,
    )
    from ..serve.executor import ReplicatedShardExecutor
    from ..serve.service import ProbeRequest, ShardedIndexService
    from ..serve.shard import fallback_shard
    from ..serve.replica import replicate
    from ..units import KEY_BYTES, KIB
    from ..workloads.updates import make_update_stream

    names = list(replica_indexes) if replica_indexes else [index] * replicas
    unknown = sorted(set(names) - set(INDEX_BY_NAME))
    if unknown:
        raise ConfigurationError(
            f"unknown replica index names {unknown}; choose from "
            f"{', '.join(sorted(INDEX_BY_NAME))}"
        )
    if len(names) != replicas:
        raise ConfigurationError(
            f"--replica-indexes names {len(names)} replicas but "
            f"--replicas is {replicas}"
        )
    relation, probes = _serve_workload(
        r_tuples, requests * request_tuples, zipf_theta, seed
    )
    plan = replicate(
        relation, shards, [INDEX_BY_NAME[name] for name in names]
    )
    controller = (
        ChaosController(schedule) if schedule is not None else None
    )
    executor = ReplicatedShardExecutor(
        plan,
        fallback_shard(relation, INDEX_BY_NAME[names[0]]),
        chaos=controller,
    )
    service = ShardedIndexService(
        plan,
        executor,
        window_bytes=window_kib * KIB,
        max_backlog_tuples=UNBOUNDED_BACKLOG,
    )
    interval = _arrival_interval(
        plan,
        max(1, window_kib * KIB // KEY_BYTES),
        request_tuples,
        executor.spec,
    )
    if update_fraction > 0.0:
        base_keys = relation.column.key_at(
            np.arange(relation.num_tuples, dtype=np.int64)
        )
        stream = make_update_stream(
            base_keys,
            probes.keys,
            requests,
            request_tuples,
            update_fraction,
            seed,
        )
        request_list = [
            ProbeRequest(
                request_id=i,
                keys=stream.keys[i],
                arrival=i * interval,
                kind=stream.kinds[i],
                values=stream.values[i],
            )
            for i in range(requests)
        ]
        report = service.run(request_list)
        _check_mixed_against_oracle(report, request_list, base_keys)
    else:
        request_list = [
            ProbeRequest(
                request_id=i,
                keys=probes.keys[
                    i * request_tuples : (i + 1) * request_tuples
                ],
                arrival=i * interval,
            )
            for i in range(requests)
        ]
        report = service.run(request_list)
    parts = [
        outcome.positions
        for outcome in report.outcomes
        if outcome.positions is not None
    ]
    positions = (
        np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    )
    return ChaosRunResult(
        positions=positions,
        makespan_seconds=report.makespan_seconds,
        timeline=executor.health.transitions(),
        fallback_windows=executor.fallback_windows,
        failovers=executor.failovers,
        recoveries=executor.recoveries,
        deferrals=executor.deferrals,
        injections=list(controller.injections) if controller else [],
        update_tuples=executor.update_tuples,
        compactions=len(executor.compactions),
        compactions_completed=executor.compactions_completed,
    )


def check_invariance(
    schedule: ChaosSchedule, **harness_kwargs: Any
) -> Tuple[bool, ChaosRunResult, ChaosRunResult]:
    """Clean run vs. scheduled run: served positions must be equal.

    Returns (ok, clean_result, chaos_result); callers wanting the
    counterexample get both runs back rather than a bare boolean.
    """
    clean = run_serve_under_chaos(schedule=None, **harness_kwargs)
    chaotic = run_serve_under_chaos(schedule=schedule, **harness_kwargs)
    ok = bool(np.array_equal(clean.positions, chaotic.positions))
    return ok, clean, chaotic


def check_replay(
    schedule: Optional[ChaosSchedule], **harness_kwargs: Any
) -> Tuple[bool, ChaosRunResult, ChaosRunResult]:
    """Same schedule twice: results AND timeline must be bit-identical."""
    first = run_serve_under_chaos(schedule=schedule, **harness_kwargs)
    second = run_serve_under_chaos(schedule=schedule, **harness_kwargs)
    ok = (
        bool(np.array_equal(first.positions, second.positions))
        and first.makespan_seconds == second.makespan_seconds
        and first.timeline == second.timeline
        and first.injections == second.injections
    )
    return ok, first, second


def build_event_log(
    schedule: ChaosSchedule,
    result: ChaosRunResult,
    invariant: bool,
    source: str = "",
) -> Dict[str, Any]:
    """The JSON artifact one ``repro chaos`` run leaves behind."""
    return {
        "schema": LOG_SCHEMA,
        "source": source,
        "schedule": schedule.as_dict(),
        "invariant": invariant,
        "summary": result.summary(),
        "injections": [
            {"t": round(time, 9), "fault": description}
            for time, description in result.injections
        ],
        "timeline": result.timeline,
    }


def main(
    schedule_path: str,
    shards: int = 2,
    replicas: int = 2,
    index: str = "binary-search",
    replica_indexes: Optional[Sequence[str]] = None,
    r_tuples: int = 2**12,
    requests: int = 16,
    request_tuples: int = 256,
    window_kib: int = 4,
    seed: int = 42,
    event_log_path: Optional[str] = None,
    update_fraction: float = 0.0,
) -> int:
    """``repro chaos``: replay a schedule, gate on result invariance.

    Exit status 0 when the scheduled run served positions element-equal
    to the fault-free run *and* the run replays bit-identically; 1 on
    either violation (the event log, if requested, is written in every
    case so CI can upload the counterexample).  ``update_fraction > 0``
    replays the schedule under mixed read/write traffic -- each run
    additionally oracle-checks itself, so a lost or reordered write
    fails loudly rather than as a silent divergence.
    """
    schedule = ChaosSchedule.load(schedule_path)
    kwargs: Dict[str, Any] = dict(
        shards=shards,
        replicas=replicas,
        index=index,
        replica_indexes=replica_indexes,
        r_tuples=r_tuples,
        requests=requests,
        request_tuples=request_tuples,
        window_kib=window_kib,
        seed=seed,
        update_fraction=update_fraction,
    )
    invariant, clean, chaotic = check_invariance(schedule, **kwargs)
    replayed, _, _ = check_replay(schedule, **kwargs)
    if event_log_path:
        atomic_write_json(
            path=event_log_path,
            payload=build_event_log(
                schedule, chaotic, invariant, source=schedule_path
            ),
        )
    updates_note = (
        f" updates={chaotic.update_tuples} "
        f"compactions={chaotic.compactions_completed}/{chaotic.compactions}"
        if update_fraction > 0.0
        else ""
    )
    print(
        f"chaos {schedule_path}: events={len(schedule.events)} "
        f"injections={len(chaotic.injections)} "
        f"failovers={chaotic.failovers} recoveries={chaotic.recoveries} "
        f"fallback_windows={chaotic.fallback_windows} "
        f"deferred={chaotic.deferrals}{updates_note}"
    )
    print(
        f"  clean makespan {clean.makespan_seconds:.9f}s, "
        f"chaotic {chaotic.makespan_seconds:.9f}s"
    )
    if not invariant:
        print("  FAIL: served positions diverge from the fault-free run")
    if not replayed:
        print("  FAIL: run is not bit-identical under replay")
    if invariant and replayed:
        print("  ok: results invariant, replay bit-identical")
        return 0
    return 1
