"""The ``repro lint`` subcommand.

Exit semantics mirror ``repro obs report``: findings print but exit 0
unless ``--fail-on-findings`` is given (CI passes it; interactive use
usually wants the listing without a red shell).  Unreadable files and
syntax errors always exit 2 -- a lint run that could not see the code
must never be reported green.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, TextIO

from .baseline import Baseline
from .engine import LintRun, lint_paths, rule_table


#: Baseline picked up automatically when present in the working tree.
DEFAULT_BASELINE = "lint_baseline.json"

OUTPUT_SCHEMA = "repro-lint/1"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the interprocedural flow rules "
        "(FLOW001/FLOW002/NP002)",
    )
    parser.add_argument(
        "--call-graph", default=None, metavar="FILE",
        help="dump the project call graph as JSON to FILE (CI artifact)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is what CI archives)",
    )
    parser.add_argument(
        "--fail-on-findings", action="store_true",
        help="exit 1 when any non-baselined finding remains",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"grandfather file (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file, report everything",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write current findings as a baseline and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )


def _resolve_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Baseline.load(args.baseline)
    if os.path.exists(DEFAULT_BASELINE):
        return Baseline.load(DEFAULT_BASELINE)
    return None


def _render_text(run: LintRun, out: TextIO) -> None:
    for path, message in run.errors:
        out.write(f"{path}: error: {message}\n")
    for finding in run.findings:
        out.write(finding.format_text() + "\n")
        if finding.source_line:
            out.write(f"    {finding.source_line}\n")
    summary = (
        f"{run.files_checked} files checked: {len(run.findings)} finding(s), "
        f"{len(run.suppressed)} suppressed, {len(run.baselined)} baselined"
    )
    if run.errors:
        summary += f", {len(run.errors)} unparsable file(s)"
    out.write(summary + "\n")


def _render_json(run: LintRun, out: TextIO) -> None:
    document = {
        "schema": OUTPUT_SCHEMA,
        "files_checked": run.files_checked,
        "findings": [finding.to_dict() for finding in run.findings],
        "suppressed": [finding.to_dict() for finding in run.suppressed],
        "baselined": [finding.to_dict() for finding in run.baselined],
        "errors": [
            {"path": path, "message": message} for path, message in run.errors
        ],
        "rules": [
            {"rule": rule_id, "severity": severity, "summary": summary}
            for rule_id, severity, summary in rule_table()
        ],
    }
    json.dump(document, out, indent=2, sort_keys=True)
    out.write("\n")


def run_lint(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    """Execute ``repro lint`` for parsed arguments; returns the exit code."""
    stream: TextIO = out if out is not None else sys.stdout
    if args.list_rules:
        for rule_id, severity, summary in rule_table():
            stream.write(f"{rule_id:>8}  {severity:<7}  {summary}\n")
        return 0

    select: Optional[List[str]] = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]

    if args.call_graph is not None:
        from ..ioutil import atomic_write_json
        from .callgraph import project_from_paths

        project, errors = project_from_paths(args.paths)
        atomic_write_json(args.call_graph, project.to_json())
        for path, message in errors:
            stream.write(f"{path}: error: {message}\n")
        stream.write(
            f"wrote call graph for {len(project.modules)} module(s) to "
            f"{args.call_graph}\n"
        )
        if errors:
            return 2

    if args.write_baseline is not None:
        run = lint_paths(
            args.paths, select=select, baseline=None, include_flow=args.flow
        )
        document = Baseline.document(run.findings)
        # The baseline is metadata, not a durable artifact of a long run,
        # but it goes through the atomic helper like everything else.
        from ..ioutil import atomic_write_json

        atomic_write_json(args.write_baseline, document)
        stream.write(
            f"wrote {len(run.findings)} finding(s) to {args.write_baseline}; "
            "fill in every 'todo' before committing\n"
        )
        return 0

    baseline = _resolve_baseline(args)
    run = lint_paths(
        args.paths, select=select, baseline=baseline, include_flow=args.flow
    )

    if args.format == "json":
        _render_json(run, stream)
    else:
        _render_text(run, stream)

    if run.errors:
        return 2
    if run.findings and args.fail_on_findings:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint", description=__doc__
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
