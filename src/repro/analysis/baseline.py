"""The committed grandfather file for ``repro lint``.

A baseline lets the linter land as a hard CI gate even when the tree
has known, not-yet-fixed findings: each entry absorbs exactly one
matching finding, and anything new still fails the build.  The policy
for this repository is a **zero-entry baseline** -- every entry that
does exist must carry a ``todo`` pointing at the tracking issue, and
the self-lint test asserts the file stays justified.

Entries match findings by ``(rule, path, stripped source line)``, never
by line number, so unrelated edits above a grandfathered line do not
invalidate the baseline.  Duplicate identical lines need one entry
each (multiset semantics) -- a second copy of a grandfathered sin is a
new finding.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from .findings import Finding

SCHEMA = "repro-lint-baseline/1"

_Key = Tuple[str, str, str]


class Baseline:
    """Multiset of grandfathered finding fingerprints."""

    def __init__(self, entries: List[dict]):
        self.entries = entries
        self._budget: Dict[_Key, int] = {}
        for entry in entries:
            key = (
                str(entry.get("rule", "")),
                str(entry.get("path", "")),
                str(entry.get("code", "")),
            )
            self._budget[key] = self._budget.get(key, 0) + 1

    def __len__(self) -> int:
        return len(self.entries)

    def absorb(self, finding: Finding) -> bool:
        """Consume one budget slot for a matching finding, if any."""
        key = finding.fingerprint()
        remaining = self._budget.get(key, 0)
        if remaining <= 0:
            return False
        self._budget[key] = remaining - 1
        return True

    def unjustified(self) -> List[dict]:
        """Entries missing their mandatory ``todo`` link."""
        return [
            entry for entry in self.entries if not str(entry.get("todo", "")).strip()
        ]

    @staticmethod
    def empty() -> "Baseline":
        return Baseline([])

    @staticmethod
    def load(path: str) -> "Baseline":
        """Read a baseline file; raises ``ValueError`` on a non-baseline."""
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if not isinstance(document, dict) or document.get("schema") != SCHEMA:
            raise ValueError(f"{path} is not a {SCHEMA} file")
        entries = document.get("findings")
        if not isinstance(entries, list):
            raise ValueError(f"{path} has no findings list")
        return Baseline([entry for entry in entries if isinstance(entry, dict)])

    @staticmethod
    def document(findings: List[Finding]) -> dict:
        """JSON-ready baseline capturing ``findings`` (``--write-baseline``).

        Each entry's ``todo`` starts empty on purpose: the workflow is
        to write the baseline, then justify every line by hand before
        committing (the self-lint test rejects blank ``todo`` fields).
        """
        return {
            "schema": SCHEMA,
            "findings": [
                {
                    "rule": finding.rule_id,
                    "path": finding.path,
                    "code": finding.source_line,
                    "todo": "",
                }
                for finding in sorted(findings, key=Finding.sort_key)
            ],
        }
