"""Project-wide symbol table and call graph for the flow analyzer.

The per-file rules (``DET*``, ``OBS*``, ...) see one tree at a time;
the flow rules (``FLOW001``/``FLOW002``/``NP002``) need to know *who
calls whom* across the whole of ``src/repro/`` so a tainted value can be
tracked from the function that produced it to the function that writes
it into a payload.  This module builds that view:

* **module names** -- every linted file gets a canonical dotted name.
  Files under a ``src/`` segment are named relative to it (so
  ``src/repro/serve/bench.py`` is ``repro.serve.bench`` no matter where
  the checkout lives); otherwise names are relative to the common root
  of the run, which is what the test fixtures exercise.
* **symbol tables** -- per-module import bindings (``import numpy as
  np``, ``from ..ioutil import atomic_write_json``, relative levels
  resolved against the package path) plus module-level functions and
  classes.
* **functions** -- every ``def`` (module level, methods, nested) gets a
  :class:`FunctionInfo` with its parameter list; each module body is
  itself registered as a pseudo-function so module-level statements
  participate in the dataflow.
* **call resolution** -- :meth:`Project.resolve_call` maps a dotted
  callee (``merge_newest_wins``, ``delta.merge_newest_wins``,
  ``self.apply``, ``DeltaBuffer.apply``) to the :class:`FunctionInfo`
  it names, including method lookup through project base classes and a
  unique-method fallback for ``obj.method(...)`` receivers of unknown
  type.  Function-valued arguments (the ``map_tasks(run_task, ...)``
  pattern) are recorded as ``callback`` edges.

``repro lint --call-graph FILE`` dumps the graph as JSON
(schema ``repro-callgraph/1``) for the CI artifact.
"""

from __future__ import annotations

import ast
import posixpath
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

CALLGRAPH_SCHEMA = "repro-callgraph/1"

#: Pseudo-function name holding a module's top-level statements.
MODULE_BODY = "<module>"


@dataclass
class FunctionInfo:
    """One ``def`` (or module body) known to the project."""

    qualname: str
    module: str
    name: str
    display_path: str
    lineno: int
    params: Tuple[str, ...]
    node: ast.AST
    #: Owning class qualname for methods, else None.
    cls: Optional[str] = None
    #: Enclosing function qualname for nested defs, else None.
    parent: Optional[str] = None
    #: Directly nested function defs: local name -> qualname.
    local_functions: Dict[str, str] = field(default_factory=dict)
    is_module_body: bool = False


@dataclass
class ClassInfo:
    """One class definition: methods plus raw (dotted) base names."""

    qualname: str
    module: str
    name: str
    display_path: str
    lineno: int
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleTable:
    """Per-module symbol table."""

    name: str
    display_path: str
    tree: ast.Module
    is_package: bool = False
    #: local name -> fully-qualified dotted target.
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level function name -> qualname.
    functions: Dict[str, str] = field(default_factory=dict)
    #: module-level class name -> qualname.
    classes: Dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved-or-not call edge for the JSON dump."""

    caller: str
    callee: Optional[str]
    dotted: str
    lineno: int
    kind: str  # "call" or "callback"


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_name_parts(display_path: str, common_root: str) -> List[str]:
    """Canonical dotted-name parts for one file's display path."""
    path = display_path[:-3] if display_path.endswith(".py") else display_path
    parts = path.split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif common_root:
        root_parts = common_root.split("/")
        if parts[: len(root_parts)] == root_parts:
            parts = parts[len(root_parts):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return [part for part in parts if part not in ("", ".", "..")]


def _common_root(display_paths: Sequence[str]) -> str:
    """Longest shared directory prefix of the run's files."""
    directories = sorted({posixpath.dirname(path) for path in display_paths})
    if not directories:
        return ""
    first = directories[0].split("/")
    last = directories[-1].split("/")
    common: List[str] = []
    for a, b in zip(first, last):
        if a != b:
            break
        common.append(a)
    return "/".join(common)


class Project:
    """Symbol tables, functions, classes, and call resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleTable] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> class qualnames defining it (unique-method lookup).
        self.method_owners: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @staticmethod
    def build(files: Sequence[Tuple[str, ast.Module]]) -> "Project":
        """Build a project from ``(display_path, tree)`` pairs."""
        project = Project()
        root = _common_root([path for path, _ in files])
        for display_path, tree in files:
            parts = _module_name_parts(display_path, root)
            name = ".".join(parts) if parts else "__main__"
            is_package = display_path.endswith("/__init__.py") or (
                display_path == "__init__.py"
            )
            if name in project.modules:
                # Identical canonical names (e.g. two scratch trees): the
                # first wins; resolution inside the loser still works for
                # its own locals because FunctionInfo carries the module.
                name = name + "+" + str(len(project.modules))
            table = ModuleTable(
                name=name,
                display_path=display_path,
                tree=tree,
                is_package=is_package,
            )
            project.modules[name] = table
            project._collect_imports(table)
            project._collect_defs(table)
        for cls in project.classes.values():
            for method in cls.methods:
                project.method_owners.setdefault(method, []).append(
                    cls.qualname
                )
        return project

    def _collect_imports(self, table: ModuleTable) -> None:
        for node in ast.walk(table.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        table.imports.setdefault(head, head)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_import_base(table, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    table.imports[bound] = target

    @staticmethod
    def _resolve_import_base(
        table: ModuleTable, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module or None
        parts = table.name.split(".") if table.name else []
        package = parts if table.is_package else parts[:-1]
        drop = node.level - 1
        if drop > len(package):
            return node.module or None
        base_parts = package[: len(package) - drop] if drop else package
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _collect_defs(self, table: ModuleTable) -> None:
        module_body = FunctionInfo(
            qualname=f"{table.name}.{MODULE_BODY}",
            module=table.name,
            name=MODULE_BODY,
            display_path=table.display_path,
            lineno=1,
            params=(),
            node=table.tree,
            is_module_body=True,
        )
        self.functions[module_body.qualname] = module_body
        self._walk_scope(
            table, table.tree, prefix=table.name, cls=None, parent=module_body
        )

    def _walk_scope(
        self,
        table: ModuleTable,
        scope: ast.AST,
        prefix: str,
        cls: Optional[str],
        parent: Optional[FunctionInfo],
    ) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                info = FunctionInfo(
                    qualname=qualname,
                    module=table.name,
                    name=node.name,
                    display_path=table.display_path,
                    lineno=node.lineno,
                    params=_param_names(node),
                    node=node,
                    cls=cls,
                    parent=parent.qualname if parent is not None else None,
                )
                self.functions[qualname] = info
                if parent is not None:
                    parent.local_functions[node.name] = qualname
                if cls is None and parent is not None and parent.is_module_body:
                    table.functions[node.name] = qualname
                if cls is not None:
                    self.classes[cls].methods.setdefault(node.name, qualname)
                self._walk_scope(
                    table, node, prefix=qualname, cls=None, parent=info
                )
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                bases = tuple(
                    name
                    for name in (dotted_name(base) for base in node.bases)
                    if name is not None
                )
                self.classes[qualname] = ClassInfo(
                    qualname=qualname,
                    module=table.name,
                    name=node.name,
                    display_path=table.display_path,
                    lineno=node.lineno,
                    bases=bases,
                )
                if parent is not None and parent.is_module_body:
                    table.classes[node.name] = qualname
                self._walk_scope(
                    table, node, prefix=qualname, cls=qualname, parent=parent
                )
            else:
                self._walk_scope(table, node, prefix, cls, parent)

    # ------------------------------------------------------------------
    # Resolution.
    # ------------------------------------------------------------------

    def resolve_call(
        self, caller: FunctionInfo, dotted: str
    ) -> Optional[Tuple[FunctionInfo, int]]:
        """Resolve a dotted callee; returns ``(target, param_offset)``.

        ``param_offset`` is 1 for bound-method calls (``self.m(...)``,
        ``obj.m(...)``) so positional arguments map past ``self``, and 0
        for plain function / unbound (``Class.m(obj, ...)``) calls.
        """
        table = self.modules.get(caller.module)
        if table is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and caller.cls is not None and len(parts) == 2:
            target = self._lookup_method(caller.cls, parts[1])
            if target is not None:
                return target[0], 1
            return None
        if len(parts) == 1:
            target_name = self._resolve_bare(caller, table, parts[0])
            if target_name is not None:
                return self._as_callable(target_name)
            return None
        head = parts[0]
        if head in table.imports:
            full = ".".join([table.imports[head]] + parts[1:])
            resolved = self._as_callable(full)
            if resolved is not None:
                return resolved
        if head in table.classes and len(parts) == 2:
            # Unbound call through the class: Class.method(obj, ...).
            target = self._lookup_method(table.classes[head], parts[1])
            if target is not None:
                return target[0], 0
        if len(parts) == 2:
            # obj.method(...) with an unknown receiver type: resolve only
            # when exactly one project class defines the method.
            owners = self.method_owners.get(parts[1], [])
            if len(owners) == 1:
                target = self._lookup_method(owners[0], parts[1])
                if target is not None:
                    return target[0], 1
        return None

    def _resolve_bare(
        self, caller: FunctionInfo, table: ModuleTable, name: str
    ) -> Optional[str]:
        scope: Optional[FunctionInfo] = caller
        while scope is not None:
            if name in scope.local_functions:
                return scope.local_functions[name]
            scope = (
                self.functions.get(scope.parent)
                if scope.parent is not None
                else None
            )
        if name in table.functions:
            return table.functions[name]
        if name in table.classes:
            return table.classes[name]
        if name in table.imports:
            return table.imports[name]
        return None

    def _as_callable(
        self, qualname: str
    ) -> Optional[Tuple[FunctionInfo, int]]:
        info = self.functions.get(qualname)
        if info is not None:
            return info, 0
        cls = self.classes.get(qualname)
        if cls is not None:
            init = self._lookup_method(qualname, "__init__")
            if init is not None:
                return init[0], 1
        return None

    def _lookup_method(
        self, cls_qualname: str, method: str
    ) -> Optional[Tuple[FunctionInfo, int]]:
        seen: Set[str] = set()
        queue = [cls_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            target = cls.methods.get(method)
            if target is not None:
                info = self.functions.get(target)
                if info is not None:
                    return info, 1
            table = self.modules.get(cls.module)
            for base in cls.bases:
                resolved = self._resolve_class_name(table, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def _resolve_class_name(
        self, table: Optional[ModuleTable], dotted: str
    ) -> Optional[str]:
        if dotted in self.classes:
            return dotted
        if table is None:
            return None
        parts = dotted.split(".")
        if parts[0] in table.classes and len(parts) == 1:
            return table.classes[parts[0]]
        if parts[0] in table.imports:
            full = ".".join([table.imports[parts[0]]] + parts[1:])
            if full in self.classes:
                return full
        return None

    def function_argument(
        self, caller: FunctionInfo, node: ast.AST
    ) -> Optional[FunctionInfo]:
        """The project function a bare-name/dotted argument refers to."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        resolved = self.resolve_call(caller, dotted)
        if resolved is not None and not resolved[0].is_module_body:
            return resolved[0]
        return None

    # ------------------------------------------------------------------
    # Call-site extraction (JSON dump).
    # ------------------------------------------------------------------

    def iter_function_statements(
        self, info: FunctionInfo
    ) -> Iterator[ast.stmt]:
        """Top-level statements of a function (or module) body, with
        nested function/class definitions excluded -- they are separate
        dataflow scopes."""
        body = getattr(info.node, "body", [])
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield stmt

    def call_sites(self) -> List[CallSite]:
        """Every call in every function, resolved where possible."""
        sites: List[CallSite] = []
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            for stmt in self.iter_function_statements(info):
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    dotted = dotted_name(node.func)
                    if dotted is None:
                        continue
                    resolved = self.resolve_call(info, dotted)
                    sites.append(
                        CallSite(
                            caller=qualname,
                            callee=(
                                resolved[0].qualname
                                if resolved is not None
                                else None
                            ),
                            dotted=dotted,
                            lineno=node.lineno,
                            kind="call",
                        )
                    )
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        callback = self.function_argument(info, arg)
                        if callback is not None:
                            sites.append(
                                CallSite(
                                    caller=qualname,
                                    callee=callback.qualname,
                                    dotted=dotted_name(arg) or callback.name,
                                    lineno=node.lineno,
                                    kind="callback",
                                )
                            )
        return sites

    def to_json(self) -> dict:
        """JSON document for ``repro lint --call-graph`` (CI artifact)."""
        sites = self.call_sites()
        return {
            "schema": CALLGRAPH_SCHEMA,
            "modules": [
                {
                    "name": table.name,
                    "path": table.display_path,
                    "package": table.is_package,
                }
                for table in sorted(
                    self.modules.values(), key=lambda t: t.name
                )
            ],
            "functions": [
                {
                    "qualname": info.qualname,
                    "path": info.display_path,
                    "line": info.lineno,
                    "params": list(info.params),
                    "class": info.cls,
                }
                for info in sorted(
                    self.functions.values(), key=lambda f: f.qualname
                )
                if not info.is_module_body
            ],
            "edges": [
                {
                    "caller": site.caller,
                    "callee": site.callee,
                    "dotted": site.dotted,
                    "line": site.lineno,
                    "kind": site.kind,
                }
                for site in sites
            ],
            "resolved_edges": sum(
                1 for site in sites if site.callee is not None
            ),
            "unresolved_edges": sum(
                1 for site in sites if site.callee is None
            ),
        }


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    args = getattr(node, "args", None)
    if args is None:
        return ()
    names = [arg.arg for arg in getattr(args, "posonlyargs", [])]
    names += [arg.arg for arg in args.args]
    names += [arg.arg for arg in args.kwonlyargs]
    return tuple(names)


def project_from_paths(
    paths: Sequence[str],
) -> Tuple[Project, List[Tuple[str, str]]]:
    """Parse every Python file under ``paths`` into a project.

    Used by ``repro lint --call-graph``; the lint engine itself hands
    already-parsed trees to :meth:`Project.build`.  Returns the project
    plus ``(path, message)`` pairs for unreadable/unparsable files.
    """
    from .engine import display_path as display, iter_python_files

    files: List[Tuple[str, ast.Module]] = []
    errors: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        shown = display(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except OSError as error:
            errors.append((shown, f"unreadable: {error}"))
            continue
        except SyntaxError as error:
            errors.append(
                (shown, f"syntax error: {error.msg} (line {error.lineno})")
            )
            continue
        files.append((shown, tree))
    return Project.build(files), errors
