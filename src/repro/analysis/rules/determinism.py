"""Determinism rules: DET001 (RNG), DET002 (wall clock), DET003 (sets).

The replay models and drift gates assume two runs of one experiment do
*identical work*.  These rules catch the three classic ways Python code
silently breaks that: process-global RNG state, wall-clock reads inside
model code, and iteration order borrowed from an unordered set.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from ..engine import FileContext, Rule, dotted_name, register
from ..findings import Finding, Severity


class _ImportMap:
    """Which local names refer to the modules a rule cares about."""

    def __init__(self, tree: ast.Module, module: str, submodule: str = ""):
        #: names bound to the module itself (``import numpy as np``).
        self.module_aliases: Set[str] = set()
        #: names bound to ``module.submodule`` (``from numpy import random``).
        self.submodule_aliases: Set[str] = set()
        #: bare names imported from the (sub)module, name -> origin attr.
        self.member_aliases: Dict[str, str] = {}
        full_sub = f"{module}.{submodule}" if submodule else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == module:
                        self.module_aliases.add(alias.asname or module)
                    elif full_sub and alias.name == full_sub:
                        # ``import numpy.random as nr`` binds the leaf only
                        # when renamed; otherwise it binds ``numpy``.
                        if alias.asname:
                            self.submodule_aliases.add(alias.asname)
                        else:
                            self.module_aliases.add(module)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if submodule and node.module == module:
                    for alias in node.names:
                        if alias.name == submodule:
                            self.submodule_aliases.add(alias.asname or submodule)
                source = node.module
                if source == (full_sub or module):
                    for alias in node.names:
                        self.member_aliases[alias.asname or alias.name] = alias.name


def _call_target(
    call: ast.Call, imports: _ImportMap, submodule: str = ""
) -> str:
    """The function name within the tracked (sub)module, or ''.

    Resolves ``np.random.rand`` / ``random.shuffle`` / ``from numpy.random
    import rand; rand(...)`` down to ``"rand"``-style member names.
    """
    func = call.func
    name = dotted_name(func)
    if name is None:
        return ""
    parts = name.split(".")
    if len(parts) == 1:
        return imports.member_aliases.get(parts[0], "")
    if submodule:
        # ``<module_alias>.<submodule>.<fn>`` or ``<sub_alias>.<fn>``.
        if len(parts) == 3 and parts[0] in imports.module_aliases and parts[1] == submodule:
            return parts[2]
        if len(parts) == 2 and parts[0] in imports.submodule_aliases:
            return parts[1]
        return ""
    if len(parts) == 2 and parts[0] in imports.module_aliases:
        return parts[1]
    return ""


@register
class UnseededRandom(Rule):
    """DET001: process-global RNG calls instead of a seeded generator."""

    rule_id = "DET001"
    severity = Severity.ERROR
    summary = (
        "unseeded RNG: np.random module-level calls or stdlib random.* "
        "outside an explicitly seeded Random/Generator"
    )

    #: numpy.random members that *construct* seedable generators.
    _NUMPY_ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "BitGenerator",
            "SeedSequence",
            "PCG64",
            "PCG64DXSM",
            "MT19937",
            "Philox",
            "SFC64",
        }
    )
    #: stdlib random members that are constructors, not global-state calls.
    _STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        numpy_imports = _ImportMap(ctx.tree, "numpy", "random")
        stdlib_imports = _ImportMap(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            member = _call_target(node, numpy_imports, "random")
            if member and member not in self._NUMPY_ALLOWED:
                yield ctx.finding(
                    self,
                    node,
                    f"np.random.{member} uses numpy's process-global RNG; "
                    "thread a seeded np.random.default_rng(seed) through "
                    "instead",
                )
                continue
            member = _call_target(node, stdlib_imports)
            if member and member not in self._STDLIB_ALLOWED:
                yield ctx.finding(
                    self,
                    node,
                    f"random.{member} mutates the interpreter-global RNG; "
                    "construct random.Random(seed) and call it there",
                )


@register
class WallClock(Rule):
    """DET002: wall-clock reads outside the sanctioned timing sites."""

    rule_id = "DET002"
    severity = Severity.ERROR
    summary = (
        "wall-clock read (time.*, datetime.now) outside obs/tracing and "
        "the runner's timing sites"
    )

    #: The modules allowed to read clocks: the span tracer, the
    #: experiment runner and bench harness (their timings are reporting,
    #: never model inputs), and the resilience run report.
    allowed_modules: Tuple[str, ...] = (
        "repro/obs/tracing.py",
        "repro/experiments/runner.py",
        "repro/experiments/bench.py",
        "repro/experiments/bench2.py",
        "repro/resilience/report.py",
    )

    _TIME_MEMBERS = frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
        }
    )
    _DATETIME_MEMBERS = frozenset({"now", "utcnow", "today"})

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.in_module(*self.allowed_modules):
            return
        time_imports = _ImportMap(ctx.tree, "time")
        datetime_imports = _ImportMap(ctx.tree, "datetime")
        datetime_classes = {
            alias
            for alias, origin in datetime_imports.member_aliases.items()
            if origin in ("datetime", "date")
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            member = _call_target(node, time_imports)
            if member in self._TIME_MEMBERS:
                yield ctx.finding(
                    self,
                    node,
                    f"time.{member}() leaks wall-clock state into "
                    "deterministic code; timings belong in obs spans or "
                    "the runner",
                )
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[-1] not in self._DATETIME_MEMBERS or len(parts) < 2:
                continue
            owner = parts[-2]
            is_datetime = (
                owner in ("datetime", "date")
                and (
                    len(parts) == 2
                    and (
                        owner in datetime_classes
                        or owner in datetime_imports.module_aliases
                    )
                    or len(parts) == 3
                    and parts[0] in datetime_imports.module_aliases
                )
            )
            if is_datetime:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() reads the wall clock; deterministic code "
                    "must take timestamps as inputs",
                )


def _is_unordered_set_expr(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a set with arbitrary iteration order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "intersection",
            "union",
            "difference",
            "symmetric_difference",
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return _is_unordered_set_expr(node.left) or _is_unordered_set_expr(
            node.right
        )
    return False


@register
class UnorderedIteration(Rule):
    """DET003: iterating a set expression without ``sorted``.

    Set iteration order depends on insertion history and hash
    randomization; any loop over one that feeds exported results makes
    output ordering a run-to-run coin flip.  Wrap the expression in
    ``sorted(...)`` (every pre-existing call site already does).
    """

    rule_id = "DET003"
    severity = Severity.ERROR
    summary = "iteration over an unordered set expression (wrap in sorted())"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        iter_exprs: List[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_exprs.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iter_exprs.extend(comp.iter for comp in node.generators)
        for expr in iter_exprs:
            if _is_unordered_set_expr(expr):
                yield ctx.finding(
                    self,
                    expr,
                    "iteration order over a set is not deterministic; "
                    "wrap the expression in sorted(...)",
                )
