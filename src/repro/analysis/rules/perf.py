"""PERF001: interpreted per-element loops in the probe hot paths.

The index and join layers are the probe hot path: every structure
traverses vectorized (``repro.indexes.*._traverse``) or through the
fused batch kernels (``repro.indexes.kernels``), and the join drivers
iterate over *windows*, never keys.  A Python-level ``for`` loop in
these packages is therefore either a bug magnet (an accidental
per-key loop runs orders of magnitude slower than the numpy path) or
one of a small set of sanctioned shapes:

* build-time geometry loops (run once per index build, O(height));
* per-level descent loops (O(height) iterations over whole arrays);
* kernel *source* loops (compiled by numba under ``REPRO_JIT``; the
  interpreted form never runs on a hot path);
* O(|S|/W) window drivers.

Each sanctioned loop carries a ``# repro: noqa[PERF001]`` marker with a
justification, so any new loop in these packages must either vectorize
or argue its case in review.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from ..engine import FileContext, Rule, register
from ..findings import Finding, Severity

#: Directory fragments of the probe hot path.
_HOT_PACKAGES: Tuple[str, ...] = ("repro/indexes/", "repro/join/")


@register
class InterpretedHotLoop(Rule):
    """PERF001: a Python ``for`` loop inside the index/join packages."""

    rule_id = "PERF001"
    severity = Severity.ERROR
    summary = (
        "Python-level for loop in the probe hot path (repro/indexes, "
        "repro/join); vectorize, fuse into a batch kernel, or justify "
        "with # repro: noqa[PERF001]"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not any(
            fragment in ctx.display_path for fragment in _HOT_PACKAGES
        ):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                yield ctx.finding(
                    self,
                    node,
                    "interpreted for loop in a probe hot-path package; "
                    "vectorize with numpy, move it into the fused kernel "
                    "source (repro.indexes.kernels), or justify the loop "
                    "with # repro: noqa[PERF001]",
                )
