"""NP001/NP002: float contamination in integer index math.

Key arrays are ``int64`` end to end -- keys, positions, partition ids.
True division (``/``) silently promotes them to ``float64``, which
rounds above 2**53 (well inside the paper's 2**33-key relations) and
makes downstream indexing dtype-dependent.  ``NP001`` flags the
single-expression shapes (``int(a / b)``, ``(a / b).astype(np.int64)``)
everywhere in the tree; ``NP002`` is its interprocedural completion --
a float-valued array tracked through assignments and calls into a
float->int cast with no dominating ``np.clip`` /
:func:`repro.indexes.domain.clamped_int64` (the statically-checkable
form of the PR-5 RadixSpline out-of-domain overflow, where a spline
extrapolation cast to ``int64`` was undefined behavior before the
bounds check ran).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import FileContext, Rule, dotted_name, register
from ..findings import Finding, Severity

#: astype targets that truncate a float back to integers.
_INT_DTYPES = frozenset(
    {
        "int",
        "numpy.int64",
        "numpy.int32",
        "numpy.intp",
        "numpy.uint64",
        "numpy.uint32",
        "np.int64",
        "np.int32",
        "np.intp",
        "np.uint64",
        "np.uint32",
    }
)
_INT_DTYPE_STRINGS = frozenset({"int64", "int32", "intp", "uint64", "uint32", "int"})


def _is_int_dtype_arg(node: ast.AST) -> bool:
    name = dotted_name(node)
    if name in _INT_DTYPES:
        return True
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in _INT_DTYPE_STRINGS
    )


@register
class DtypeDroppingDivision(Rule):
    """NP001: true division feeding an integer cast in index math."""

    rule_id = "NP001"
    severity = Severity.ERROR
    summary = (
        "int(a / b) or (a / b).astype(int64): float64 rounds past 2**53; "
        "use floor division //"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # int(a / b)
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "int"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.BinOp)
                and isinstance(node.args[0].op, ast.Div)
            ):
                yield ctx.finding(
                    self,
                    node,
                    "int(a / b) routes index math through float64 "
                    "(exact only below 2**53); use a // b",
                )
                continue
            # (a / b).astype(<int dtype>)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and isinstance(node.func.value, ast.BinOp)
                and isinstance(node.func.value.op, ast.Div)
                and node.args
                and _is_int_dtype_arg(node.args[0])
            ):
                yield ctx.finding(
                    self,
                    node,
                    "(a / b).astype(int) drops int64 through float64; "
                    "use floor division // to stay integral",
                )


@register
class UnclampedFloatCast(Rule):
    """NP002: float value reaches an int cast with no dominating clamp.

    Opt-in flow rule (``repro lint --flow``).  Tracks float-producing
    expressions (true division, ``np.log2``/``exp``/..., ``astype(
    float)``) through assignments, returns, and project calls; if one
    reaches an ``.astype(<int dtype>)`` cast without passing through
    ``np.clip`` or :func:`repro.indexes.domain.clamped_int64` first,
    the cast can overflow (undefined behavior in numpy) exactly as the
    PR-5 RadixSpline probe did on out-of-domain keys.
    """

    rule_id = "NP002"
    severity = Severity.ERROR
    summary = (
        "interprocedural: unclamped float value flows into a float->int "
        "astype cast (clamp with np.clip or repro.indexes.clamped_int64)"
    )
    requires_flow = True

    def __init__(self) -> None:
        self._contexts: List[FileContext] = []

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        self._contexts.append(ctx)
        return ()

    def finish_run(self) -> Iterable[Finding]:
        from ..flow import Lane, lane_findings

        for raw in lane_findings(self._contexts, Lane.DTYPE):
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=raw.path,
                line=raw.line,
                col=raw.col,
                message=raw.message,
                source_line=raw.source_line,
            )
