"""NP001: float contamination in integer index math.

Key arrays are ``int64`` end to end -- keys, positions, partition ids.
True division (``/``) silently promotes them to ``float64``, which
rounds above 2**53 (well inside the paper's 2**33-key relations) and
makes downstream indexing dtype-dependent.  The classic shapes are
``int(a / b)`` and ``(a / b).astype(np.int64)`` where ``a // b`` was
meant; both are flagged everywhere in the tree.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Rule, dotted_name, register
from ..findings import Finding, Severity

#: astype targets that truncate a float back to integers.
_INT_DTYPES = frozenset(
    {
        "int",
        "numpy.int64",
        "numpy.int32",
        "numpy.intp",
        "numpy.uint64",
        "numpy.uint32",
        "np.int64",
        "np.int32",
        "np.intp",
        "np.uint64",
        "np.uint32",
    }
)
_INT_DTYPE_STRINGS = frozenset({"int64", "int32", "intp", "uint64", "uint32", "int"})


def _is_int_dtype_arg(node: ast.AST) -> bool:
    name = dotted_name(node)
    if name in _INT_DTYPES:
        return True
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in _INT_DTYPE_STRINGS
    )


@register
class DtypeDroppingDivision(Rule):
    """NP001: true division feeding an integer cast in index math."""

    rule_id = "NP001"
    severity = Severity.ERROR
    summary = (
        "int(a / b) or (a / b).astype(int64): float64 rounds past 2**53; "
        "use floor division //"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # int(a / b)
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "int"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.BinOp)
                and isinstance(node.args[0].op, ast.Div)
            ):
                yield ctx.finding(
                    self,
                    node,
                    "int(a / b) routes index math through float64 "
                    "(exact only below 2**53); use a // b",
                )
                continue
            # (a / b).astype(<int dtype>)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and isinstance(node.func.value, ast.BinOp)
                and isinstance(node.func.value.op, ast.Div)
                and node.args
                and _is_int_dtype_arg(node.args[0])
            ):
                yield ctx.finding(
                    self,
                    node,
                    "(a / b).astype(int) drops int64 through float64; "
                    "use floor division // to stay integral",
                )
