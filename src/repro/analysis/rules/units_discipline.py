"""UNIT001: raw byte arithmetic outside :mod:`repro.units`.

The paper mixes binary sizes (GiB relations, MiB windows) with decimal
bandwidths (GB/s), which is exactly the environment where a bare
``* 1024`` or ``2**30`` quietly picks the wrong convention.  All byte
constants live in :mod:`repro.units` (``KIB``/``MIB``/``GIB``/``TIB``,
``KB``/``MB``/``GB``); arithmetic elsewhere must name them.

Flagged shapes (literal operands only -- ``1 << self.bits`` is fine):

* ``x * 1024`` / ``x / 1048576`` and friends (any power-of-1024 literal
  as a multiply/divide operand);
* ``1 << 10|20|30|40`` with both sides literal;
* ``2 ** 30`` / ``2 ** 40`` (the GiB/TiB powers; ``2**10`` and
  ``2**20`` stay legal because they appear as element *counts*, e.g.
  ``interleave_width = 2**20`` threads).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Rule, register
from ..findings import Finding, Severity

#: Powers of 1024 that, as bare literals, mean someone hand-rolled a
#: byte unit (KIB..TIB values).
_BYTE_LITERALS = frozenset({1024, 1024**2, 1024**3, 1024**4})

#: Shift distances that produce those values from 1.
_BYTE_SHIFTS = frozenset({10, 20, 30, 40})

#: Exponents of two that are (nearly) always byte sizes in this codebase.
_BYTE_POWERS = frozenset({30, 40})

_SUGGESTION = {
    1024: "KIB",
    1024**2: "MIB",
    1024**3: "GIB",
    1024**4: "TIB",
}


def _int_literal(node: ast.AST) -> object:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


@register
class RawByteArithmetic(Rule):
    """UNIT001: magic byte-unit literals bypassing ``repro.units``."""

    rule_id = "UNIT001"
    severity = Severity.ERROR
    summary = (
        "raw byte arithmetic (* 1024, 1 << 30, 2**30) outside "
        "repro/units.py -- use KIB/MIB/GIB/TIB"
    )

    #: The one module allowed to spell the constants out.
    allowed_modules = ("repro/units.py",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.in_module(*self.allowed_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            left = _int_literal(node.left)
            right = _int_literal(node.right)
            if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)):
                for value in (left, right):
                    if isinstance(value, int) and value in _BYTE_LITERALS:
                        yield ctx.finding(
                            self,
                            node,
                            f"literal {value} in byte arithmetic; use "
                            f"repro.units.{_SUGGESTION[value]}",
                        )
                        break
            elif isinstance(node.op, ast.LShift):
                if left == 1 and isinstance(right, int) and right in _BYTE_SHIFTS:
                    yield ctx.finding(
                        self,
                        node,
                        f"1 << {right} hand-rolls a byte unit; use "
                        f"repro.units.{_SUGGESTION[1 << right]}",
                    )
            elif isinstance(node.op, ast.Pow):
                if left == 2 and isinstance(right, int) and right in _BYTE_POWERS:
                    yield ctx.finding(
                        self,
                        node,
                        f"2**{right} hand-rolls a byte unit; use "
                        f"repro.units.{_SUGGESTION[2 ** right]}",
                    )
