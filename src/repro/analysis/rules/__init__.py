"""The shipped rule set.  Importing this package registers every rule.

Rule id prefixes group by invariant family:

* ``DET`` -- bit-identical determinism (RNG seeding, wall clock,
  unordered iteration);
* ``UNIT`` -- byte-unit discipline (:mod:`repro.units` owns the
  constants);
* ``OBS`` -- instrumentation contracts (:mod:`repro.obs` naming and
  the branch-cheap disabled path);
* ``NP`` -- numpy dtype discipline in index math;
* ``PERF`` -- no interpreted per-element loops in the probe hot paths;
* ``RES`` -- durable-artifact crash safety (:mod:`repro.ioutil`);
* ``FLOW`` -- interprocedural taint flows (opt-in via ``--flow``):
  nondeterministic values/orderings reaching payload writers.
"""

from __future__ import annotations

from . import (
    determinism,
    flow,
    numpy_ops,
    obs_contracts,
    perf,
    resilience,
    units_discipline,
)

__all__ = [
    "determinism",
    "flow",
    "numpy_ops",
    "obs_contracts",
    "perf",
    "resilience",
    "units_discipline",
]
