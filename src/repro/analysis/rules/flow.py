"""FLOW001/FLOW002: interprocedural determinism-flow rules.

Where ``DET001``-``DET003`` flag a nondeterministic *construct* the
moment it appears, these rules flag a nondeterministic *flow*: a value
(FLOW001) or an iteration order (FLOW002) produced by such a construct
that actually reaches one of the payload surfaces the bit-identity
gates diff -- across any number of intermediate calls.  The heavy
lifting lives in :mod:`repro.analysis.flow`; the rules here collect the
run's parsed files in :meth:`check_file` and hand the whole set to the
shared (cached) analysis in :meth:`finish_run`, so the three flow rules
cost one interprocedural pass, not three.

Both rules are opt-in (``requires_flow``): ``repro lint --flow``
enables them, as does naming them in ``--select``.  Findings anchor at
the *sink* line -- the payload write is where a leak becomes an
artifact, and that anchoring keeps the ``(rule, path, source line)``
baseline fingerprint and ``# repro: noqa[FLOW001]`` suppression
machinery working unchanged.  The full source->...->sink call path is
in the message.
"""

from __future__ import annotations

from typing import Iterable, List

from ..engine import FileContext, Rule, register
from ..findings import Finding, Severity


class _FlowRule(Rule):
    """Shared scaffolding: collect files, emit one lane's findings.

    The taint engine is imported lazily: :mod:`repro.analysis.flow`
    itself imports helpers from :mod:`.determinism`, so a module-level
    import here would be circular through the rules package init.
    """

    requires_flow = True
    #: :class:`repro.analysis.flow.Lane` value name ("value"/"order").
    lane_name: str = ""

    def __init__(self) -> None:
        self._contexts: List[FileContext] = []

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        self._contexts.append(ctx)
        return ()

    def finish_run(self) -> Iterable[Finding]:
        from ..flow import Lane, lane_findings

        for raw in lane_findings(self._contexts, Lane(self.lane_name)):
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=raw.path,
                line=raw.line,
                col=raw.col,
                message=raw.message,
                source_line=raw.source_line,
            )


@register
class DeterminismValueFlow(_FlowRule):
    """FLOW001: a nondeterministic value reaches a payload writer."""

    rule_id = "FLOW001"
    severity = Severity.ERROR
    summary = (
        "interprocedural: unseeded-RNG / wall-clock / os.environ value "
        "flows into a payload writer (atomic writers, checkpoints, "
        "metrics, json)"
    )
    lane_name = "value"


@register
class DeterminismOrderFlow(_FlowRule):
    """FLOW002: nondeterministic ordering reaches a payload writer."""

    rule_id = "FLOW002"
    severity = Severity.ERROR
    summary = (
        "interprocedural: set-iteration / completion / listing order "
        "flows unsorted into a payload writer"
    )
    lane_name = "order"
