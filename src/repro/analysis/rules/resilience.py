"""RES001: durable artifacts must go through the atomic write helper.

A truncate-then-write ``open(path, "w")`` that dies mid-write leaves a
torn file: a half-written ``metrics.json`` fails the CI drift gate with
a parse error instead of a clean diff, and a torn figure export looks
like a bad run.  :func:`repro.ioutil.atomic_write_text` (tmp file in
the same directory, flush+fsync, ``os.replace``) makes every durable
write all-or-nothing, mirroring what the checkpoint layer achieves with
per-line checksums.

Flagged: ``open``/``io.open`` with a ``"w"``/``"x"`` mode and
``Path.write_text``/``write_bytes``.  Append-mode opens pass -- the
checkpoint JSONL is append-only by design and verifies each record's
checksum on load.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..engine import FileContext, Rule, dotted_name, register
from ..findings import Finding, Severity


def _write_mode(call: ast.Call) -> Optional[str]:
    """The constant mode string of an ``open``-style call, if any."""
    mode_node: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    else:
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
                break
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


@register
class NonAtomicDurableWrite(Rule):
    """RES001: truncating writes outside :mod:`repro.ioutil`."""

    rule_id = "RES001"
    severity = Severity.ERROR
    summary = (
        "truncating file write (open 'w', Path.write_text) bypassing "
        "repro.ioutil.atomic_write_text"
    )

    #: The helper's home implements the pattern once.
    allowed_modules = ("repro/ioutil.py",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.in_module(*self.allowed_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in ("open", "io.open"):
                mode = _write_mode(node)
                if mode is not None and ("w" in mode or "x" in mode):
                    yield ctx.finding(
                        self,
                        node,
                        f"open(..., {mode!r}) tears the file on a crash "
                        "mid-write; use repro.ioutil.atomic_write_text / "
                        "atomic_write_json",
                    )
            elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                "write_text",
                "write_bytes",
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"Path.{node.func.attr} truncates in place; use "
                    "repro.ioutil.atomic_write_text for durable artifacts",
                )
