"""Instrumentation contracts: OBS001 (naming) and OBS002 (guards).

The observability layer only pays off if counter names are stable and
the disabled path stays branch-cheap.  OBS001 enforces the naming
scheme (lowercase dotted ``family.metric`` names) and -- across the
whole tree -- that one counter name always carries the same label keys,
because ``index.lookups`` and ``index.lookups{index=...}`` are
*different* manifest keys and the drift gate would silently compare
neither.  OBS002 keeps per-iteration instrumentation behind an
``obs.enabled()`` guard so untraced sweeps stay bit-identical in time
as well as in counters.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from ..engine import FileContext, Rule, dotted_name, register, walk_with_ancestors
from ..findings import Finding, Severity

#: ``family.metric`` (two or more lowercase dotted segments).
_DOTTED_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
#: Single lowercase segment (phase names, add_perf_counters prefixes).
_SEGMENT_RE = re.compile(r"^[a-z][a-z0-9_]*$")
#: Characters a constant fragment of an f-string name may contain.
_FRAGMENT_RE = re.compile(r"^[a-z0-9_.]*$")

#: ``obs.<member>`` recording calls whose first argument is a metric name.
_DOTTED_NAME_CALLS = frozenset({"add", "observe", "gauge", "span"})
_SEGMENT_NAME_CALLS = frozenset({"phase", "add_perf_counters"})
#: Calls whose keyword arguments become metric labels.
_LABELED_CALLS = frozenset({"add", "observe", "gauge"})


def _obs_member(call: ast.Call) -> Optional[str]:
    """``add`` for an ``obs.add(...)`` call, else ``None``."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "obs"
    ):
        return func.attr
    return None


def _constant_name(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


@register
class ObsNaming(Rule):
    """OBS001: metric-name scheme and cross-file label consistency."""

    rule_id = "OBS001"
    severity = Severity.ERROR
    summary = (
        "obs counter/span/phase name off the lowercase dotted scheme, or "
        "one counter used with different label keys across call sites"
    )

    def __init__(self) -> None:
        #: name -> list of (ctx-independent site info, label keys).
        self._sites: Dict[str, List[Tuple[str, int, int, str, frozenset]]] = {}

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            member = _obs_member(node)
            if member is None:
                continue
            if member in _DOTTED_NAME_CALLS:
                yield from self._check_name(ctx, node, member, _DOTTED_NAME_RE)
            elif member in _SEGMENT_NAME_CALLS:
                yield from self._check_name(ctx, node, member, _SEGMENT_RE)
            if member in _LABELED_CALLS:
                name = _constant_name(node)
                if name is not None:
                    labels = frozenset(
                        keyword.arg
                        for keyword in node.keywords
                        if keyword.arg is not None and keyword.arg != "value"
                    )
                    self._sites.setdefault(name, []).append(
                        (
                            ctx.display_path,
                            node.lineno,
                            node.col_offset,
                            ctx.source_line(node.lineno),
                            labels,
                        )
                    )

    def _check_name(
        self,
        ctx: FileContext,
        node: ast.Call,
        member: str,
        pattern: "re.Pattern[str]",
    ) -> Iterable[Finding]:
        if not node.args:
            return
        name_node = node.args[0]
        if isinstance(name_node, ast.Constant):
            if isinstance(name_node.value, str) and not pattern.match(
                name_node.value
            ):
                yield ctx.finding(
                    self,
                    name_node,
                    f"obs.{member} name {name_node.value!r} does not match "
                    "the registered scheme (lowercase dotted segments, "
                    "e.g. 'index.lookups')",
                )
        elif isinstance(name_node, ast.JoinedStr):
            for piece in name_node.values:
                if isinstance(piece, ast.Constant) and isinstance(
                    piece.value, str
                ):
                    if not _FRAGMENT_RE.match(piece.value):
                        yield ctx.finding(
                            self,
                            name_node,
                            f"obs.{member} f-string name fragment "
                            f"{piece.value!r} contains characters outside "
                            "the lowercase dotted scheme",
                        )

    def finish_run(self) -> Iterable[Finding]:
        for name, sites in sorted(self._sites.items()):
            label_sets = {labels for _, _, _, _, labels in sites}
            if len(label_sets) <= 1:
                continue
            shapes = " vs ".join(
                "{" + ", ".join(sorted(labels)) + "}"
                for labels in sorted(label_sets, key=sorted)
            )
            for path, line, col, source_line, _ in sites:
                yield Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"counter {name!r} is recorded with conflicting "
                        f"label keys across call sites ({shapes}); the "
                        "manifest treats each shape as a separate key"
                    ),
                    source_line=source_line,
                )


def _test_calls_enabled(test: ast.AST) -> bool:
    """Whether an ``if`` test subtree calls ``obs.enabled()``."""
    for node in ast.walk(test):
        if isinstance(node, ast.Call) and dotted_name(node.func) in (
            "obs.enabled",
            "enabled",
        ):
            return True
    return False


def _has_early_return_guard(func: ast.AST) -> bool:
    """``def f(): if not obs.enabled(): return`` as the first statement."""
    body = getattr(func, "body", [])
    for statement in body:
        # Skip the docstring.
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue
        return (
            isinstance(statement, ast.If)
            and isinstance(statement.test, ast.UnaryOp)
            and isinstance(statement.test.op, ast.Not)
            and _test_calls_enabled(statement.test)
            and bool(statement.body)
            and isinstance(statement.body[0], ast.Return)
        )
    return False


@register
class HotPathGuard(Rule):
    """OBS002: per-iteration obs calls need an ``obs.enabled()`` guard.

    ``obs.add`` itself checks the enable flag, but the *call* still
    builds argument tuples (often ``float(...)`` conversions and
    f-string names) on every loop iteration.  Inside a loop that cost
    lands on the untraced hot path, so the call must sit under an
    ``if obs.enabled():`` block (anywhere in the enclosing function's
    ancestor chain) or behind a first-statement early-return guard.
    """

    rule_id = "OBS002"
    severity = Severity.ERROR
    summary = (
        "obs recording call inside a loop without an obs.enabled() guard"
    )

    #: The obs package itself implements the fast path.
    exempt_modules = ("repro/obs/",)

    _RECORDING = frozenset({"add", "observe", "gauge", "add_perf_counters"})

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if any(part in ctx.display_path for part in self.exempt_modules):
            return
        for node, ancestors in walk_with_ancestors(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            member = _obs_member(node)
            if member not in self._RECORDING:
                continue
            in_loop = False
            guarded = False
            # Walk ancestors innermost-first, stopping at the enclosing
            # function: a guard outside the function cannot be seen by
            # other callers of it.
            for ancestor in reversed(ancestors):
                if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    guarded = guarded or _has_early_return_guard(ancestor)
                    break
                if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
                    in_loop = True
                if isinstance(ancestor, ast.If) and _test_calls_enabled(
                    ancestor.test
                ):
                    guarded = True
            if in_loop and not guarded:
                yield ctx.finding(
                    self,
                    node,
                    f"obs.{member} runs every loop iteration without an "
                    "obs.enabled() guard; hoist an 'if obs.enabled():' "
                    "around the loop (or the call)",
                )
