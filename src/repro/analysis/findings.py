"""The finding record every rule emits.

A finding pins one invariant violation to a file and line.  It carries
the stripped source line so the baseline can match it independent of
line numbers (see :mod:`repro.analysis.baseline`) and so the text
renderer can show context without re-reading files.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple, Union


class Severity(enum.Enum):
    """How a finding affects the exit gate.

    Both severities fail ``--fail-on-findings``; the split exists so
    output can rank hard determinism breaks above softer contract
    drift, and so future rules can ship as warnings first.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One invariant violation at a specific source location."""

    rule_id: str
    severity: Severity
    path: str  #: repo-relative posix path
    line: int  #: 1-based line of the offending node
    col: int  #: 0-based column of the offending node
    message: str
    source_line: str  #: stripped text of ``line`` (baseline fingerprint)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-independent identity used by the baseline."""
        return (self.rule_id, self.path, self.source_line)

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready form (``--format json`` and CI artifacts)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source_line": self.source_line,
        }
