"""AST-based invariant checking: ``repro lint``.

The reproduction's credibility rests on invariants that runtime gates
(the 1e-9 manifest drift tolerance, the exact-counter oracle tests) can
only catch *after* a regression ships: bit-identical determinism, unit
discipline, and instrumentation contracts.  This package checks them
statically, before a sweep ever runs.

Architecture
------------

* :mod:`repro.analysis.findings` -- the :class:`Finding` record and
  severities.
* :mod:`repro.analysis.engine` -- the rule registry, per-file visitor
  driver, cross-file passes, and ``# repro: noqa[RULE-ID]``
  suppressions (parsed from real comment tokens, so string literals
  never suppress anything).
* :mod:`repro.analysis.baseline` -- the committed grandfather file:
  findings are fingerprinted by ``(rule, path, stripped source line)``
  so baselines survive unrelated line-number churn.
* :mod:`repro.analysis.rules` -- the codebase-specific rules
  (``DET*``, ``UNIT*``, ``OBS*``, ``NP*``, ``RES*``, ``FLOW*``).
  Importing the subpackage registers them.
* :mod:`repro.analysis.callgraph` -- the project-wide symbol table and
  call graph (``repro lint --call-graph`` dumps it as JSON).
* :mod:`repro.analysis.flow` -- the interprocedural taint engine
  behind the opt-in flow rules (``FLOW001``/``FLOW002``/``NP002``):
  nondeterministic sources and unclamped floats tracked across calls
  into payload writers and int casts, with the full source->sink call
  path in each finding.
* :mod:`repro.analysis.cli` -- the ``repro lint`` subcommand: text or
  ``--format json`` output, ``--fail-on-findings`` exit semantics
  mirroring ``repro obs report``, plus ``--flow`` and ``--call-graph``.

Typical use::

    repro lint src/ --fail-on-findings --format json
    repro lint src/ --flow --fail-on-findings
    repro lint src/ --call-graph callgraph.json

Programmatic use::

    from repro.analysis import lint_paths

    run = lint_paths(["src"])
    for finding in run.findings:
        print(finding.format_text())
"""

from __future__ import annotations

from .baseline import Baseline
from .callgraph import CALLGRAPH_SCHEMA, Project, project_from_paths
from .engine import (
    FileContext,
    LintRun,
    Rule,
    all_rules,
    lint_paths,
    register,
    rule_table,
)
from .findings import Finding, Severity

__all__ = [
    "Baseline",
    "CALLGRAPH_SCHEMA",
    "FileContext",
    "Finding",
    "LintRun",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "lint_paths",
    "project_from_paths",
    "register",
    "rule_table",
]
