"""Rule engine: registry, per-file AST driver, suppressions.

The engine parses each file once, hands the tree to every selected
rule, then runs each rule's cross-file ``finish_run`` pass (rules like
``OBS001`` correlate string literals across the whole tree).  Findings
flow through two filters before they reach the user:

1. **Suppressions** -- ``# repro: noqa[RULE-ID]`` (or a bare
   ``# repro: noqa``) on the finding's line.  Comments are read from
   :mod:`tokenize` tokens, so the marker inside a string literal never
   suppresses anything.
2. **Baseline** -- grandfathered findings matched by ``(rule, path,
   stripped line)`` (see :mod:`repro.analysis.baseline`).

Rules register themselves with :func:`register`; importing
:mod:`repro.analysis.rules` pulls in the whole shipped set.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from .baseline import Baseline
from .findings import Finding, Severity

#: ``# repro: noqa`` or ``# repro: noqa[DET001]`` / ``noqa[DET001,OBS002]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9_,\s]+)\])?", re.ASCII
)

#: Sentinel meaning "every rule suppressed on this line".
_ALL_RULES = "*"


class FileContext:
    """Everything a rule needs about one parsed source file."""

    def __init__(self, path: str, display_path: str, source: str, tree: ast.Module):
        self.path = path  #: filesystem path as given
        self.display_path = display_path  #: repo-relative posix path
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()

    def source_line(self, lineno: int) -> str:
        """Stripped text of a 1-based line ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_module(self, *suffixes: str) -> bool:
        """Whether this file's posix path ends with any given suffix.

        Rules use this for allowlists (``ctx.in_module("repro/obs/
        tracing.py")``) so matching is independent of the checkout
        root or the path the user passed on the command line.
        """
        return any(self.display_path.endswith(suffix) for suffix in suffixes)

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Build a finding for ``node`` with this file's coordinates."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=rule.rule_id,
            severity=rule.severity,
            path=self.display_path,
            line=lineno,
            col=col,
            message=message,
            source_line=self.source_line(lineno),
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id`, :attr:`severity`, and
    :attr:`summary`, and implement :meth:`check_file`.  Rules needing a
    whole-tree view accumulate state in :meth:`check_file` and emit
    from :meth:`finish_run`.  One instance is created per lint run, so
    instance state never leaks between runs.
    """

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""
    #: Interprocedural rules (FLOW001/FLOW002/NP002) analyze the whole
    #: file set at once and are opt-in: ``--flow`` (or naming them in
    #: ``--select``) enables them, default runs skip them.
    requires_flow: bool = False

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finish_run(self) -> Iterable[Finding]:
        """Cross-file pass, called once after every file was checked."""
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _ensure_rules_loaded() -> None:
    # Importing the subpackage triggers every @register decorator.
    from . import rules  # noqa: F401  (import-for-side-effect)


def all_rules(
    select: Optional[Sequence[str]] = None,
    include_flow: bool = False,
) -> List[Rule]:
    """Fresh instances of the registered rules, optionally filtered.

    Flow rules only run when ``include_flow`` is set or when ``select``
    names them explicitly -- an explicit selection is already an opt-in.
    """
    _ensure_rules_loaded()
    if select is not None:
        unknown = sorted(set(select) - set(_REGISTRY))
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(unknown)}")
        wanted = set(select)
    else:
        wanted = {
            rule_id
            for rule_id, cls in _REGISTRY.items()
            if include_flow or not cls.requires_flow
        }
    return [cls() for rule_id, cls in sorted(_REGISTRY.items()) if rule_id in wanted]


def rule_table() -> List[Tuple[str, str, str]]:
    """``(rule_id, severity, summary)`` rows for ``--list-rules``."""
    _ensure_rules_loaded()
    return [
        (rule_id, cls.severity.value, cls.summary)
        for rule_id, cls in sorted(_REGISTRY.items())
    ]


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids suppressed there.

    Only real comment tokens count.  A bare ``# repro: noqa`` maps to
    ``{"*"}``.  Unreadable source (tokenizer errors on code the AST
    parser accepted) yields no suppressions rather than crashing the
    run.
    """
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if not match:
                continue
            rules = match.group("rules")
            ids = (
                {part.strip() for part in rules.split(",") if part.strip()}
                if rules
                else {_ALL_RULES}
            )
            suppressed.setdefault(token.start[0], set()).update(ids)
    except (tokenize.TokenError, IndentationError):
        return {}
    return suppressed


def is_suppressed(finding: Finding, suppressions: Dict[int, Set[str]]) -> bool:
    ids = suppressions.get(finding.line)
    if not ids:
        return False
    return _ALL_RULES in ids or finding.rule_id in ids


# ----------------------------------------------------------------------
# Driver.
# ----------------------------------------------------------------------


@dataclass
class LintRun:
    """The outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings dropped by an inline ``# repro: noqa`` marker.
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings absorbed by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    #: Files that could not be read or parsed: ``(path, message)``.
    errors: List[Tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``.py`` files under each path (files pass through as-is)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(root, filename)


def display_path(path: str) -> str:
    """Repo-relative posix form used in findings and baselines."""
    rel = os.path.relpath(path)
    return rel.replace(os.sep, "/")


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    include_flow: bool = False,
) -> LintRun:
    """Run the selected rules over every Python file under ``paths``."""
    rules = all_rules(select, include_flow=include_flow)
    run = LintRun()
    raw: List[Tuple[Finding, Dict[int, Set[str]]]] = []
    file_suppressions: Dict[str, Dict[int, Set[str]]] = {}

    for path in iter_python_files(paths):
        shown = display_path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            run.errors.append((shown, f"unreadable: {error}"))
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            run.errors.append((shown, f"syntax error: {error.msg} (line {error.lineno})"))
            continue
        run.files_checked += 1
        suppressions = parse_suppressions(source)
        file_suppressions[shown] = suppressions
        ctx = FileContext(path, shown, source, tree)
        for rule in rules:
            for finding in rule.check_file(ctx):
                raw.append((finding, suppressions))

    # Cross-file passes: suppressions are looked up by the finding's path
    # (the emitting rule saw the file earlier in this run).
    for rule in rules:
        for finding in rule.finish_run():
            raw.append((finding, file_suppressions.get(finding.path, {})))

    for finding, suppressions in raw:
        if is_suppressed(finding, suppressions):
            run.suppressed.append(finding)
        elif baseline is not None and baseline.absorb(finding):
            run.baselined.append(finding)
        else:
            run.findings.append(finding)

    run.findings.sort(key=Finding.sort_key)
    run.suppressed.sort(key=Finding.sort_key)
    run.baselined.sort(key=Finding.sort_key)
    return run


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules.
# ----------------------------------------------------------------------


def walk_with_ancestors(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Yield every node with its ancestor chain (outermost first)."""
    stack: List[ast.AST] = []

    def visit(node: ast.AST) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
        yield node, tuple(stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    return visit(tree)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
