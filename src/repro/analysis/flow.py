"""Interprocedural taint engine behind ``FLOW001``/``FLOW002``/``NP002``.

The per-file rules prove *local* discipline (no unseeded RNG call, no
wall-clock read outside timing sites).  This engine proves the
*whole-program* invariant those rules exist for: **no nondeterministic
source may reach a payload-writing sink**, across function boundaries.
It runs three lanes over the :mod:`repro.analysis.callgraph` project:

* ``VALUE`` (FLOW001) -- nondeterministic *values*: unseeded RNG,
  wall-clock reads (outside the sanctioned timing modules), and
  ``os.environ`` reads (outside the sanctioned configuration modules).
* ``ORDER`` (FLOW002) -- nondeterministic *ordering*: iteration over
  unordered set expressions, pool-completion order
  (``as_completed``/``imap_unordered``), and filesystem listing order.
  ``sorted()``, stable argsorts, and the deterministic-merge helpers
  (``merge_newest_wins``) sanitize this lane; assigning into an indexed
  slot (``results[i] = x``) places a value deterministically and does
  not propagate order taint.
* ``DTYPE`` (NP002) -- unclamped float values: true division,
  transcendental calls, and ``astype(float)`` results flowing into a
  float->int64 ``astype`` cast with no dominating ``np.clip`` /
  :func:`repro.indexes.domain.clamped_int64` (the statically-checkable
  form of the PR-5 RadixSpline out-of-domain overflow).

Mechanics: each function (and each module body) is abstractly
interpreted twice (the second pass stabilizes loop-carried flows).
Variables map to sets of *origin nodes* -- source sites, callee
returns, or the function's own parameters -- and every statement adds
edges to a per-lane origin graph:

    source-site  ->  param(f, i)  ->  ret(g)  ->  ...  ->  sink-site

Findings are the source->sink paths of that graph, discovered by BFS
(cycles in the call graph are handled by construction), and each
finding's message carries the full call path.  Sinks are the payload
surfaces every PR since PR 2 stakes bit-identity on: the
:mod:`repro.ioutil` atomic writers, checkpoint JSONL appends,
``MetricsRegistry`` recording, and ``json.dump``/``dumps``.

The registry below is declarative on purpose: adding a source, sink,
or sanitizer is a data edit, not an engine edit.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import FunctionInfo, Project, dotted_name
from .rules.determinism import (
    UnseededRandom,
    WallClock,
    _ImportMap,
    _call_target,
    _is_unordered_set_expr,
)


class Lane(enum.Enum):
    """One taint dimension; each lane has its own graph and rule."""

    VALUE = "value"
    ORDER = "order"
    DTYPE = "dtype"


#: Modules whose ``os.environ`` reads are the sanctioned configuration
#: surface (flags in, behavior out -- never payload bytes).
CONFIG_MODULES: Tuple[str, ...] = (
    "repro/config.py",
    "repro/obs/__init__.py",
    "repro/resilience/faults.py",
    "repro/resilience/retry.py",
    "repro/resilience/checkpoint.py",
    "repro/experiments/runner.py",
)

#: Calls whose results carry pool-completion / filesystem order.
_ORDER_SOURCE_CALLS = frozenset(
    {"as_completed", "imap_unordered", "listdir", "scandir", "glob", "iglob"}
)

#: Calls that destroy ordering nondeterminism.
_ORDER_SANITIZERS = frozenset(
    {
        "sorted",
        "min",
        "max",
        "merge_newest_wins",
        "sort",
        "argsort",
        "lexsort",
        "unique",
        "searchsorted",
    }
)

#: Calls neutral in every lane (structure, not data).
_NEUTRAL_CALLS = frozenset({"len", "isinstance", "type", "id", "hasattr"})

#: Calls producing float-valued arrays (DTYPE lane sources).
_FLOAT_SOURCE_CALLS = frozenset(
    {
        "log",
        "log2",
        "log10",
        "log1p",
        "exp",
        "expm1",
        "sqrt",
        "interp",
        "mean",
        "std",
        "var",
        "divide",
        "true_divide",
    }
)

#: Calls whose results are integral (DTYPE taint killed).
_INT_PRODUCER_CALLS = frozenset(
    {
        "searchsorted",
        "argsort",
        "argmin",
        "argmax",
        "nonzero",
        "count_nonzero",
        "arange",
        "digitize",
        "floor_divide",
        "int",
        "round",
        "bit_length",
    }
)

#: Calls that clamp a float into a known domain (DTYPE sanitizers).
_DTYPE_SANITIZERS = frozenset({"clip", "clamped_int64"})

#: Methods that mutate their receiver with their arguments.
_MUTATORS = frozenset(
    {"append", "extend", "insert", "add", "update", "appendleft", "setdefault"}
)

_INT_DTYPE_NAMES = frozenset(
    {
        "int",
        "numpy.int64",
        "numpy.int32",
        "numpy.intp",
        "numpy.uint64",
        "numpy.uint32",
        "np.int64",
        "np.int32",
        "np.intp",
        "np.uint64",
        "np.uint32",
    }
)
_INT_DTYPE_STRINGS = frozenset(
    {"int64", "int32", "intp", "uint64", "uint32", "int"}
)
_FLOAT_DTYPE_NAMES = frozenset(
    {"float", "numpy.float64", "numpy.float32", "np.float64", "np.float32"}
)
_FLOAT_DTYPE_STRINGS = frozenset({"float64", "float32"})


@dataclass(frozen=True)
class SinkSpec:
    """One payload surface: how to match it and what to call it."""

    description: str
    #: last dotted component(s) that match regardless of receiver.
    names: Tuple[str, ...] = ()
    #: (attr name, receiver regex) pairs for method-style sinks.
    attrs: Tuple[Tuple[str, str], ...] = ()


#: The determinism-lane payload surfaces (FLOW001 + FLOW002 share them).
DETERMINISM_SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec(
        description="atomic payload write",
        names=("atomic_write_text", "atomic_write_json"),
    ),
    SinkSpec(
        description="checkpoint append",
        attrs=(("record", r"checkpoint"),),
    ),
    SinkSpec(
        description="metrics recording",
        attrs=(
            ("add", r"(^|\.)obs$|registry|metrics"),
            ("set_gauge", r"(^|\.)obs$|registry|metrics"),
            ("observe", r"(^|\.)obs$|registry|metrics"),
        ),
    ),
    SinkSpec(
        description="json serialization",
        attrs=(("dump", r"^json$"), ("dumps", r"^json$")),
    ),
)


@dataclass(frozen=True)
class SourceSite:
    """One occurrence of a nondeterministic (or unclamped-float) origin."""

    id: str
    lane: Lane
    description: str
    path: str
    line: int
    col: int
    func: str  # enclosing function qualname


@dataclass(frozen=True)
class SinkSite:
    """One occurrence of a payload-writing (or int-casting) call."""

    id: str
    lane: Lane
    description: str
    path: str
    line: int
    col: int
    func: str


@dataclass(frozen=True)
class RawFlowFinding:
    """A lane finding before a rule stamps its id/severity on it."""

    path: str
    line: int
    col: int
    message: str
    source_line: str


#: Origin-graph node: ("src", site_id, "") / ("param", qualname, index)
#: / ("ret", qualname, "") / ("sink", site_id, "").
Node = Tuple[str, str, str]


class _ModuleEnv:
    """Per-module import maps shared by every lane pass."""

    def __init__(self, display_path: str, tree: ast.Module):
        self.display_path = display_path
        self.numpy_random = _ImportMap(tree, "numpy", "random")
        self.stdlib_random = _ImportMap(tree, "random")
        self.time = _ImportMap(tree, "time")
        self.datetime = _ImportMap(tree, "datetime")
        self.os = _ImportMap(tree, "os")

    def in_module(self, *suffixes: str) -> bool:
        return any(self.display_path.endswith(s) for s in suffixes)


def _last_component(dotted: Optional[str]) -> str:
    if not dotted:
        return ""
    return dotted.rsplit(".", 1)[-1]


def _receiver(dotted: Optional[str]) -> str:
    if not dotted or "." not in dotted:
        return ""
    return dotted.rsplit(".", 1)[0]


def _dtype_arg_matches(node: ast.AST, names: frozenset, strings: frozenset) -> bool:
    dotted = dotted_name(node)
    if dotted in names:
        return True
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in strings
    )


def _is_environ_expr(node: ast.AST, env: _ModuleEnv) -> bool:
    """``os.environ`` (optionally subscripted) as an expression."""
    if isinstance(node, ast.Subscript):
        return _is_environ_expr(node.value, env)
    dotted = dotted_name(node)
    if dotted is None:
        return False
    parts = dotted.split(".")
    if len(parts) == 2 and parts[1] == "environ":
        return parts[0] in env.os.module_aliases
    if len(parts) == 1:
        return env.os.member_aliases.get(parts[0]) == "environ"
    return False


class FlowAnalysis:
    """Build the per-lane origin graphs and solve them for findings."""

    def __init__(self, contexts: Sequence) -> None:
        self.contexts = list(contexts)
        self.project = Project.build(
            [(ctx.display_path, ctx.tree) for ctx in self.contexts]
        )
        self._ctx_by_path = {ctx.display_path: ctx for ctx in self.contexts}
        self.envs: Dict[str, _ModuleEnv] = {}
        for table in self.project.modules.values():
            self.envs[table.name] = _ModuleEnv(table.display_path, table.tree)
        self.edges: Dict[Lane, Dict[Node, Set[Node]]] = {
            lane: {} for lane in Lane
        }
        self.sources: Dict[Lane, Dict[str, SourceSite]] = {
            lane: {} for lane in Lane
        }
        self.sinks: Dict[Lane, Dict[str, SinkSite]] = {
            lane: {} for lane in Lane
        }

    # ------------------------------------------------------------------
    # Graph construction.
    # ------------------------------------------------------------------

    def run(self) -> "FlowAnalysis":
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            env = self.envs.get(info.module)
            if env is None:
                continue
            for lane in Lane:
                _FunctionPass(self, info, env, lane).run()
        return self

    def add_edge(self, lane: Lane, src: Node, dst: Node) -> None:
        self.edges[lane].setdefault(src, set()).add(dst)

    def source_node(
        self,
        lane: Lane,
        description: str,
        node: ast.AST,
        env: _ModuleEnv,
        func: str,
    ) -> Node:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        site_id = f"{env.display_path}:{line}:{col}:{description}"
        self.sources[lane].setdefault(
            site_id,
            SourceSite(
                id=site_id,
                lane=lane,
                description=description,
                path=env.display_path,
                line=line,
                col=col,
                func=func,
            ),
        )
        return ("src", site_id, "")

    def sink_node(
        self,
        lane: Lane,
        description: str,
        node: ast.AST,
        env: _ModuleEnv,
        func: str,
    ) -> Node:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        site_id = f"{env.display_path}:{line}:{col}:{description}"
        self.sinks[lane].setdefault(
            site_id,
            SinkSite(
                id=site_id,
                lane=lane,
                description=description,
                path=env.display_path,
                line=line,
                col=col,
                func=func,
            ),
        )
        return ("sink", site_id, "")

    # ------------------------------------------------------------------
    # Solving.
    # ------------------------------------------------------------------

    def findings(self, lane: Lane) -> List[RawFlowFinding]:
        graph = self.edges[lane]
        results: List[RawFlowFinding] = []
        for source_id in sorted(self.sources[lane]):
            source = self.sources[lane][source_id]
            start: Node = ("src", source_id, "")
            parents: Dict[Node, Optional[Node]] = {start: None}
            queue: List[Node] = [start]
            while queue:
                current = queue.pop(0)
                for nxt in sorted(graph.get(current, ())):
                    if nxt not in parents:
                        parents[nxt] = current
                        queue.append(nxt)
            for sink_id in sorted(self.sinks[lane]):
                target: Node = ("sink", sink_id, "")
                if target not in parents:
                    continue
                sink = self.sinks[lane][sink_id]
                chain = self._chain(parents, target, source, sink)
                results.append(self._finding(lane, source, sink, chain))
        results.sort(key=lambda f: (f.path, f.line, f.col, f.message))
        return results

    def _chain(
        self,
        parents: Dict[Node, Optional[Node]],
        target: Node,
        source: SourceSite,
        sink: SinkSite,
    ) -> List[str]:
        nodes: List[Node] = []
        cursor: Optional[Node] = target
        while cursor is not None:
            nodes.append(cursor)
            cursor = parents.get(cursor)
        nodes.reverse()
        funcs: List[str] = [source.func]
        for kind, name, _ in nodes:
            if kind in ("param", "ret"):
                funcs.append(name)
        funcs.append(sink.func)
        deduped: List[str] = []
        for name in funcs:
            if not deduped or deduped[-1] != name:
                deduped.append(name)
        return deduped

    def _finding(
        self,
        lane: Lane,
        source: SourceSite,
        sink: SinkSite,
        chain: List[str],
    ) -> RawFlowFinding:
        path_text = " -> ".join(chain)
        if lane is Lane.VALUE:
            message = (
                f"nondeterministic value from {source.description} "
                f"({source.path}:{source.line}) reaches {sink.description} "
                f"({sink.path}:{sink.line}); call path: {path_text}. Seed "
                "the source or keep it out of payload-writing code"
            )
        elif lane is Lane.ORDER:
            message = (
                f"nondeterministic ordering from {source.description} "
                f"({source.path}:{source.line}) reaches {sink.description} "
                f"({sink.path}:{sink.line}); call path: {path_text}. Sort "
                "the collection (sorted/stable argsort/merge_newest_wins) "
                "before it shapes a payload"
            )
        else:
            message = (
                f"unclamped float value from {source.description} "
                f"({source.path}:{source.line}) reaches {sink.description} "
                f"({sink.path}:{sink.line}); call path: {path_text}. Clamp "
                "the domain first (np.clip or repro.indexes.clamped_int64) "
                "-- float->int64 overflow is undefined"
            )
        ctx = self._ctx_by_path.get(sink.path)
        source_line = ctx.source_line(sink.line) if ctx is not None else ""
        return RawFlowFinding(
            path=sink.path,
            line=sink.line,
            col=sink.col,
            message=message,
            source_line=source_line,
        )


class _FunctionPass:
    """Abstractly interpret one function body for one lane."""

    def __init__(
        self,
        analysis: FlowAnalysis,
        info: FunctionInfo,
        env: _ModuleEnv,
        lane: Lane,
    ) -> None:
        self.analysis = analysis
        self.project = analysis.project
        self.info = info
        self.env = env
        self.lane = lane
        self.vars: Dict[str, Set[Node]] = {}
        for index, name in enumerate(info.params):
            self.vars[name] = {("param", info.qualname, str(index))}

    def run(self) -> None:
        statements = [
            stmt
            for stmt in getattr(self.info.node, "body", [])
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        # Two passes: the second stabilizes loop-carried dataflow (edges
        # are additive, so this only ever adds flows, never drops them).
        for _ in range(2):
            for stmt in statements:
                self._stmt(stmt)

    # -- statements ----------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # separate dataflow scopes, analyzed on their own
        if isinstance(stmt, ast.Assign):
            origins = self._expr(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, origins)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, self._expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            origins = self._expr(stmt.value)
            key = dotted_name(stmt.target)
            if key is not None:
                merged = self.vars.get(key, set()) | origins
                self.vars[key] = merged
            else:
                self._bind_target(stmt.target, origins)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for origin in self._expr(stmt.value):
                    self.analysis.add_edge(
                        self.lane, origin, ("ret", self.info.qualname, "")
                    )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            origins = self._expr(stmt.iter)
            origins |= self._order_source_for_iter(stmt.iter)
            self._bind_target(stmt.target, origins)
            for inner in stmt.body + stmt.orelse:
                self._stmt(inner)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._stmt(inner)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._stmt(inner)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origins = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, origins)
            for inner in stmt.body:
                self._stmt(inner)
        elif isinstance(stmt, ast.Try):
            blocks = stmt.body + stmt.orelse + stmt.finalbody
            for inner in blocks:
                self._stmt(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self._stmt(inner)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)
        # pass/break/continue/import/global/nonlocal: nothing to do.

    def _bind_target(self, target: ast.AST, origins: Set[Node]) -> None:
        if isinstance(target, ast.Name):
            self.vars[target.id] = set(origins)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, origins)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, origins)
        elif isinstance(target, ast.Attribute):
            key = dotted_name(target)
            if key is not None:
                self.vars[key] = self.vars.get(key, set()) | origins
        elif isinstance(target, ast.Subscript):
            # results[i] = x places x at a deterministic slot: the
            # container inherits value/dtype taint but not order taint.
            if self.lane is Lane.ORDER:
                return
            key = dotted_name(target.value)
            if key is not None:
                self.vars[key] = self.vars.get(key, set()) | origins

    # -- expressions ---------------------------------------------------

    def _expr(self, node: ast.AST) -> Set[Node]:
        if isinstance(node, ast.Name):
            return set(self.vars.get(node.id, ()))
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            if self.lane is Lane.VALUE and _is_environ_expr(node, self.env):
                if not self.env.in_module(*CONFIG_MODULES):
                    return {
                        self.analysis.source_node(
                            self.lane,
                            "os.environ read",
                            node,
                            self.env,
                            self.info.qualname,
                        )
                    }
                return set()
            dotted = dotted_name(node)
            if dotted is not None and dotted in self.vars:
                return set(self.vars[dotted])
            origins: Set[Node] = set()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    origins |= self._expr(child)
            return origins
        if isinstance(node, (ast.Compare, ast.BoolOp)) and (
            self.lane is Lane.DTYPE
        ):
            # Comparisons yield booleans: no float escapes through them.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)
            return set()
        if isinstance(node, ast.BinOp):
            origins = self._expr(node.left) | self._expr(node.right)
            if self.lane is Lane.DTYPE and isinstance(node.op, ast.Div):
                origins.add(
                    self.analysis.source_node(
                        self.lane,
                        "true division",
                        node,
                        self.env,
                        self.info.qualname,
                    )
                )
            return origins
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            origins = set()
            for comp in node.generators:
                iter_origins = self._expr(comp.iter)
                iter_origins |= self._order_source_for_iter(comp.iter)
                self._bind_target(comp.target, iter_origins)
                for condition in comp.ifs:
                    self._expr(condition)
            if isinstance(node, ast.DictComp):
                origins |= self._expr(node.key) | self._expr(node.value)
            else:
                origins |= self._expr(node.elt)
            return origins
        if isinstance(node, ast.NamedExpr):
            origins = self._expr(node.value)
            self._bind_target(node.target, origins)
            return origins
        if isinstance(node, ast.Lambda):
            return set()
        origins = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                origins |= self._expr(child)
        return origins

    def _order_source_for_iter(self, iter_expr: ast.AST) -> Set[Node]:
        if self.lane is not Lane.ORDER:
            return set()
        if _is_unordered_set_expr(iter_expr):
            return {
                self.analysis.source_node(
                    self.lane,
                    "set iteration order",
                    iter_expr,
                    self.env,
                    self.info.qualname,
                )
            }
        return set()

    # -- calls ---------------------------------------------------------

    def _call(self, call: ast.Call) -> Set[Node]:
        dotted = dotted_name(call.func)
        last = _last_component(dotted)
        if not last and isinstance(call.func, ast.Attribute):
            # Method on a non-name receiver (``f(x).astype(...)``,
            # ``(a + b).clip(...)``): the dotted chain is unresolvable
            # but the method name still drives source/sink/sanitizer
            # matching.
            last = call.func.attr
        if last in _NEUTRAL_CALLS:
            for arg in call.args:
                self._expr(arg)
            return set()
        if self.lane is Lane.DTYPE:
            return self._call_dtype(call, dotted, last)
        return self._call_determinism(call, dotted, last)

    def _call_determinism(
        self, call: ast.Call, dotted: Optional[str], last: str
    ) -> Set[Node]:
        positional = [self._expr(arg) for arg in call.args]
        keywords = [
            (kw.arg, self._expr(kw.value)) for kw in call.keywords
        ]
        if self.lane is Lane.ORDER and last in _ORDER_SANITIZERS:
            return set()
        source = self._match_determinism_source(call, dotted, last)
        if source is not None:
            return {source}
        result: Set[Node] = set()
        resolved = (
            self.project.resolve_call(self.info, dotted)
            if dotted is not None
            else None
        )
        result |= self._callback_returns(call)
        if resolved is not None and not resolved[0].is_module_body:
            target, offset = resolved
            self._bind_call_args(target, offset, positional, keywords)
            result.add(("ret", target.qualname, ""))
        else:
            for origins in positional:
                result |= origins
            for _, origins in keywords:
                result |= origins
            if isinstance(call.func, ast.Attribute):
                result |= self._expr(call.func.value)
        self._match_sinks(call, dotted, last, positional, keywords)
        self._apply_mutation(call, dotted, last, positional, keywords)
        return result

    def _call_dtype(
        self, call: ast.Call, dotted: Optional[str], last: str
    ) -> Set[Node]:
        positional = [self._expr(arg) for arg in call.args]
        keywords = [
            (kw.arg, self._expr(kw.value)) for kw in call.keywords
        ]
        if last in _DTYPE_SANITIZERS:
            return set()
        if last in _INT_PRODUCER_CALLS:
            return set()
        if last == "astype" and isinstance(call.func, ast.Attribute):
            receiver = self._expr(call.func.value)
            if call.args and _dtype_arg_matches(
                call.args[0], _FLOAT_DTYPE_NAMES, _FLOAT_DTYPE_STRINGS
            ):
                return {
                    self.analysis.source_node(
                        self.lane,
                        "astype(float) conversion",
                        call,
                        self.env,
                        self.info.qualname,
                    )
                }
            if call.args and _dtype_arg_matches(
                call.args[0], _INT_DTYPE_NAMES, _INT_DTYPE_STRINGS
            ):
                sink = self.analysis.sink_node(
                    self.lane,
                    "float->int64 astype cast",
                    call,
                    self.env,
                    self.info.qualname,
                )
                for origin in receiver:
                    self.analysis.add_edge(self.lane, origin, sink)
                return set()
            return receiver
        if last in _FLOAT_SOURCE_CALLS:
            return {
                self.analysis.source_node(
                    self.lane,
                    f"{last}() float result",
                    call,
                    self.env,
                    self.info.qualname,
                )
            }
        result: Set[Node] = set()
        resolved = (
            self.project.resolve_call(self.info, dotted)
            if dotted is not None
            else None
        )
        result |= self._callback_returns(call)
        if resolved is not None and not resolved[0].is_module_body:
            target, offset = resolved
            self._bind_call_args(target, offset, positional, keywords)
            result.add(("ret", target.qualname, ""))
        else:
            for origins in positional:
                result |= origins
            for _, origins in keywords:
                result |= origins
            if isinstance(call.func, ast.Attribute):
                result |= self._expr(call.func.value)
        self._apply_mutation(call, dotted, last, positional, keywords)
        return result

    def _match_determinism_source(
        self, call: ast.Call, dotted: Optional[str], last: str
    ) -> Optional[Node]:
        env = self.env
        if self.lane is Lane.VALUE:
            member = _call_target(call, env.numpy_random, "random")
            if member and member not in UnseededRandom._NUMPY_ALLOWED:
                return self.analysis.source_node(
                    self.lane,
                    f"unseeded np.random.{member}",
                    call,
                    env,
                    self.info.qualname,
                )
            member = _call_target(call, env.stdlib_random)
            if member and member not in UnseededRandom._STDLIB_ALLOWED:
                return self.analysis.source_node(
                    self.lane,
                    f"unseeded random.{member}",
                    call,
                    env,
                    self.info.qualname,
                )
            if not env.in_module(*WallClock.allowed_modules):
                member = _call_target(call, env.time)
                if member in WallClock._TIME_MEMBERS:
                    return self.analysis.source_node(
                        self.lane,
                        f"wall clock time.{member}",
                        call,
                        env,
                        self.info.qualname,
                    )
                if (
                    dotted is not None
                    and last in WallClock._DATETIME_MEMBERS
                    and len(dotted.split(".")) >= 2
                ):
                    parts = dotted.split(".")
                    owner = parts[-2]
                    datetime_classes = {
                        alias
                        for alias, origin in (
                            env.datetime.member_aliases.items()
                        )
                        if origin in ("datetime", "date")
                    }
                    if owner in ("datetime", "date") and (
                        owner in datetime_classes
                        or owner in env.datetime.module_aliases
                        or (
                            len(parts) == 3
                            and parts[0] in env.datetime.module_aliases
                        )
                    ):
                        return self.analysis.source_node(
                            self.lane,
                            f"wall clock {dotted}",
                            call,
                            env,
                            self.info.qualname,
                        )
            if not env.in_module(*CONFIG_MODULES):
                member = _call_target(call, env.os)
                if member == "getenv":
                    return self.analysis.source_node(
                        self.lane,
                        "os.getenv read",
                        call,
                        env,
                        self.info.qualname,
                    )
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "get"
                    and _is_environ_expr(call.func.value, env)
                ):
                    return self.analysis.source_node(
                        self.lane,
                        "os.environ read",
                        call,
                        env,
                        self.info.qualname,
                    )
        elif self.lane is Lane.ORDER:
            if last in _ORDER_SOURCE_CALLS:
                return self.analysis.source_node(
                    self.lane,
                    f"{last}() completion/listing order",
                    call,
                    env,
                    self.info.qualname,
                )
        return None

    def _callback_returns(self, call: ast.Call) -> Set[Node]:
        """Function-valued arguments: the map_tasks(run_task, ...) shape.

        A project function passed as an argument may be invoked by the
        callee, so the call's result conservatively includes that
        function's return taint (and the callgraph records a callback
        edge for the JSON dump).
        """
        result: Set[Node] = set()
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            callback = self.project.function_argument(self.info, arg)
            if callback is not None:
                result.add(("ret", callback.qualname, ""))
        return result

    def _bind_call_args(
        self,
        target: FunctionInfo,
        offset: int,
        positional: List[Set[Node]],
        keywords: List[Tuple[Optional[str], Set[Node]]],
    ) -> None:
        for index, origins in enumerate(positional):
            param_index = index + offset
            if param_index >= len(target.params):
                break
            for origin in origins:
                self.analysis.add_edge(
                    self.lane,
                    origin,
                    ("param", target.qualname, str(param_index)),
                )
        for name, origins in keywords:
            if name is None or name not in target.params:
                continue
            param_index = target.params.index(name)
            for origin in origins:
                self.analysis.add_edge(
                    self.lane,
                    origin,
                    ("param", target.qualname, str(param_index)),
                )

    def _match_sinks(
        self,
        call: ast.Call,
        dotted: Optional[str],
        last: str,
        positional: List[Set[Node]],
        keywords: List[Tuple[Optional[str], Set[Node]]],
    ) -> None:
        for spec in DETERMINISM_SINKS:
            matched = last in spec.names
            if not matched and dotted is not None:
                receiver = _receiver(dotted)
                for attr, pattern in spec.attrs:
                    if last == attr and re.search(pattern, receiver):
                        matched = True
                        break
            if not matched:
                continue
            sink = self.analysis.sink_node(
                self.lane,
                spec.description,
                call,
                self.env,
                self.info.qualname,
            )
            for origins in positional:
                for origin in origins:
                    self.analysis.add_edge(self.lane, origin, sink)
            for _, origins in keywords:
                for origin in origins:
                    self.analysis.add_edge(self.lane, origin, sink)

    def _apply_mutation(
        self,
        call: ast.Call,
        dotted: Optional[str],
        last: str,
        positional: List[Set[Node]],
        keywords: List[Tuple[Optional[str], Set[Node]]],
    ) -> None:
        if not isinstance(call.func, ast.Attribute) or last not in _MUTATORS:
            return
        key = dotted_name(call.func.value)
        if key is None:
            return
        merged: Set[Node] = set(self.vars.get(key, ()))
        for origins in positional:
            merged |= origins
        for _, origins in keywords:
            merged |= origins
        self.vars[key] = merged


# ----------------------------------------------------------------------
# Cached entry point shared by the three flow rules.
# ----------------------------------------------------------------------


class ProjectFlows:
    """Per-lane findings for one analyzed file set."""

    def __init__(self, analysis: FlowAnalysis):
        self.analysis = analysis
        self.findings: Dict[Lane, List[RawFlowFinding]] = {
            lane: analysis.findings(lane) for lane in Lane
        }


_CACHE: List[Tuple[Tuple, ProjectFlows]] = []
_CACHE_LIMIT = 8


def compute_flows(contexts: Sequence) -> ProjectFlows:
    """Analyze a file set once; FLOW001/FLOW002/NP002 share the result.

    The engine instantiates each rule fresh per run and every flow rule
    sees the same files, so a tiny content-keyed cache collapses the
    three ``finish_run`` calls into one interprocedural analysis.
    """
    key = tuple(
        sorted(
            (ctx.display_path, len(ctx.source), hash(ctx.source))
            for ctx in contexts
        )
    )
    for cached_key, cached in _CACHE:
        if cached_key == key:
            return cached
    flows = ProjectFlows(FlowAnalysis(contexts).run())
    _CACHE.append((key, flows))
    if len(_CACHE) > _CACHE_LIMIT:
        del _CACHE[0]
    return flows


def lane_findings(contexts: Sequence, lane: Lane) -> Iterable[RawFlowFinding]:
    """The lane's findings for a file set (cached across rules)."""
    return compute_flows(contexts).findings[lane]
