"""Binary search over the sorted base column.

The simplest of the paper's four access paths: no auxiliary structure at
all; every lookup bisects the full column, touching ``~log2(N)`` positions
scattered across the whole relation.  That scatter is why binary search is
the worst TLB citizen in the paper's Fig. 4 (~105 translation requests per
lookup at 111 GiB) and why it benefits so much from partitioned lookups.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .. import obs
from ..data.column import KEY_DTYPE, MaterializedColumn
from ..data.relation import Relation
from ..hardware.memory import SystemMemory
from ..perf.analytic import midtree_sweep_pages
from ..units import KEY_BYTES
from .base import Index, TraceRecorder


class BinarySearchIndex(Index):
    """Lower-bound binary search directly on the relation's key column."""

    name = "binary search"
    supports_updates = False
    # Calibrated to the paper's Fig. 4: ~105 translation requests per key
    # at 111 GiB over ~13 last-level misses per lookup.
    tlb_replay_factor = 8.0

    def __init__(self, relation: Relation):
        super().__init__(relation)
        self._placed = False

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------

    @property
    def footprint_bytes(self) -> int:
        return 0  # searches the base relation in place

    @property
    def height(self) -> int:
        return max(1, math.ceil(math.log2(len(self.column) + 1)))

    def place(self, memory: SystemMemory) -> None:
        """No structure to allocate; only requires the relation be placed."""
        if self.relation.allocation is None:
            raise_from = (
                "binary search needs the relation placed in host memory "
                "before tracing"
            )
            from ..errors import SimulationError

            raise SimulationError(raise_from)
        self._placed = True

    # ------------------------------------------------------------------
    # Traversal.
    # ------------------------------------------------------------------

    def _traverse(
        self, keys: np.ndarray, recorder: Optional[TraceRecorder]
    ) -> np.ndarray:
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        n = len(self.column)
        count = len(keys)
        lo = np.zeros(count, dtype=np.int64)
        hi = np.full(count, n, dtype=np.int64)
        base = (
            self.relation.allocation.base
            if recorder is not None and self.relation.allocation is not None
            else 0
        )
        active = lo < hi
        rounds = 0
        while active.any():
            rounds += 1
            mid = (lo + hi) >> 1
            if recorder is not None:
                recorder.record(base + mid * KEY_BYTES, active=active)
            safe_mid = np.where(active, mid, 0)
            mid_keys = self.column.key_at(safe_mid)
            go_right = active & (mid_keys < keys)
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
            active = lo < hi
        if obs.enabled():
            obs.add("index.search_rounds", float(rounds), index=self.name)
        in_range = lo < n
        # Final verification read of the lower-bound position (the INLJ
        # fetches the candidate match anyway).
        if recorder is not None:
            recorder.record(base + np.where(in_range, lo, 0) * KEY_BYTES,
                            active=in_range)
        found = np.zeros(count, dtype=bool)
        if in_range.any():
            candidate = np.where(in_range, lo, 0)
            found_keys = self.column.key_at(candidate)
            found = in_range & (found_keys == keys)
        positions = np.where(found, lo, np.int64(-1))
        return positions

    def _lower_bound(self, keys: np.ndarray) -> np.ndarray:
        """Plain vectorized lower-bound bisection of the full column."""
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        n = len(self.column)
        count = len(keys)
        lo = np.zeros(count, dtype=np.int64)
        hi = np.full(count, n, dtype=np.int64)
        active = lo < hi
        while active.any():
            mid = (lo + hi) >> 1
            mid_keys = self.column.key_at(np.where(active, mid, 0))
            go_right = active & (mid_keys < keys)
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
            active = lo < hi
        return lo

    def _batch_kernel_args(self):
        """Scalar-kernel packing: the raw sorted key array is the index."""
        if not isinstance(self.column, MaterializedColumn):
            return None
        return ("binary_search_batch", (self.column.keys,))

    def _range_kernel_args(self):
        if not isinstance(self.column, MaterializedColumn):
            return None
        return ("binary_search_range_batch", (self.column.keys,))

    # ------------------------------------------------------------------
    # Analytic locality.
    # ------------------------------------------------------------------

    def expected_sweep_pages(
        self,
        window_lookups: float,
        page_bytes: int,
        l2_bytes: int,
        cacheline_bytes: int,
    ) -> float:
        return midtree_sweep_pages(
            window_lookups=window_lookups,
            span_bytes=self.column.nbytes,
            page_bytes=page_bytes,
            l2_bytes=l2_bytes,
            cacheline_bytes=cacheline_bytes,
        )
