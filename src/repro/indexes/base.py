"""Shared index interface and trace recording.

Every index implements one traversal routine, ``_traverse``, used two ways:

* ``lookup(keys)`` runs it without a recorder -- a pure, vectorized
  functional lookup usable at any scale;
* ``trace_lookups(keys)`` runs the same code with a
  :class:`TraceRecorder`, capturing the byte address of every memory
  access so the machine model can replay it.

One code path for both guarantees the simulated access pattern is exactly
the access pattern of the functional algorithm, which is the property the
whole reproduction rests on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import obs
from ..data.column import KEY_DTYPE
from ..data.relation import Relation
from ..errors import SimulationError
from ..gpu.executor import LookupTrace
from ..gpu.simt import SimtCost, divergent_cost
from ..hardware.counters import PerfCounters
from ..hardware.memory import SystemMemory
from ..units import KEY_BYTES
from . import jit


class TraceRecorder:
    """Collects per-step access addresses during a traversal.

    Each call to :meth:`record` adds one traversal step: an int64 address
    array of length ``num_lookups`` with -1 marking lookups that are
    inactive at that step.
    """

    def __init__(self, num_lookups: int):
        if num_lookups <= 0:
            raise SimulationError(
                f"recorder needs a positive lookup count, got {num_lookups}"
            )
        self.num_lookups = num_lookups
        self._steps = []

    def record(
        self, addresses: np.ndarray, active: Optional[np.ndarray] = None
    ) -> None:
        """Record one step.  ``active`` masks lookups participating in it."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.shape != (self.num_lookups,):
            raise SimulationError(
                f"step must have shape ({self.num_lookups},), got "
                f"{addresses.shape}"
            )
        if active is not None:
            addresses = np.where(active, addresses, np.int64(-1))
        self._steps.append(addresses)

    @property
    def num_steps(self) -> int:
        return len(self._steps)

    def build(self) -> LookupTrace:
        """Assemble the recorded steps into a :class:`LookupTrace`."""
        if not self._steps:
            matrix = np.empty((0, self.num_lookups), dtype=np.int64)
        else:
            matrix = np.stack(self._steps, axis=0)
        steps_per_lookup = (matrix >= 0).sum(axis=0).astype(np.int64)
        return LookupTrace(
            step_addresses=matrix, steps_per_lookup=steps_per_lookup
        )


@dataclass
class LookupResult:
    """Outcome of a traced lookup batch.

    Attributes:
        positions: per-key position in the indexed column, -1 if absent.
        trace: the recorded memory accesses.
        simt: warp-instruction cost of executing the batch.
    """

    positions: np.ndarray
    trace: LookupTrace
    simt: SimtCost


class Index(abc.ABC):
    """A secondary index over a relation's sorted key column.

    Lifecycle: construct over a relation (builds the logical structure),
    optionally :meth:`place` it into simulated host memory (reserves
    capacity and fixes addresses), then :meth:`lookup` or
    :meth:`trace_lookups`.

    Class attribute ``name`` labels figures; ``supports_updates`` records
    the paper's Section 6 guidance (Harmonia and the B+tree can absorb
    inserts; binary search and the RadixSpline assume static data).

    ``tlb_replay_factor`` converts last-level-TLB misses into the
    *translation requests* the paper's hardware counters report.  A single
    miss fans out into several requests on real hardware (divergent warps
    replay memory instructions per distinct page, and the uTLB hierarchy
    re-requests); the per-index factors are calibrated against the paper's
    Fig. 4 anchors (~105 requests/key for binary search, ~11.3 for
    Harmonia, at 111 GiB) and absorb TLB-hierarchy effects the single-level
    LRU model does not capture.
    """

    name: str = "index"
    supports_updates: bool = False
    tlb_replay_factor: float = 6.0

    def __init__(self, relation: Relation):
        self.relation = relation
        self.column = relation.column

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def footprint_bytes(self) -> int:
        """Memory consumed by the index structure, excluding the data."""

    @property
    @abc.abstractmethod
    def height(self) -> int:
        """Number of structure levels a lookup traverses."""

    @abc.abstractmethod
    def place(self, memory: SystemMemory) -> None:
        """Allocate the index structure in simulated host memory.

        The paper stores all index structures in CPU memory and accesses
        them over the interconnect (Section 3.2).  Raises
        :class:`~repro.errors.CapacityError` when the structure does not
        fit -- which is exactly how the paper's B+tree and Harmonia hit
        their reduced R limits.
        """

    @property
    def is_placed(self) -> bool:
        return getattr(self, "_placed", False)

    def _require_placed(self) -> None:
        if not self.is_placed:
            raise SimulationError(
                f"{self.name} must be placed in simulated memory before "
                "tracing lookups"
            )

    # ------------------------------------------------------------------
    # Lookups.
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _traverse(
        self, keys: np.ndarray, recorder: Optional[TraceRecorder]
    ) -> np.ndarray:
        """Locate ``keys``; optionally record accesses.  Returns positions."""

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Functional lookup: position of each key in the column, -1 if absent."""
        keys = np.asarray(keys)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int64)
        if obs.enabled():
            obs.add("index.lookups", float(len(keys)), index=self.name)
            obs.add("index.lookup_batches", index=self.name)
        return self._traverse(keys, recorder=None)

    # ------------------------------------------------------------------
    # Fused batch kernel.
    # ------------------------------------------------------------------

    def probe_batch(
        self, keys: np.ndarray, out: np.ndarray, offset: int = 0
    ) -> PerfCounters:
        """Fused batch probe into a caller-owned output buffer.

        Writes the position of each key (-1 on miss) into
        ``out[offset : offset + len(keys)]`` -- no result allocation, no
        concatenation -- and returns the batch's fused
        :class:`PerfCounters` delta.  The counters are *structural*
        (``lookups`` and a height-based access count), derived only from
        the batch size and the index geometry, so the numpy and JIT
        backends report exactly equal deltas by construction; replayed
        cache/TLB counters remain the job of :meth:`trace_lookups`.

        The kernel behind it is either the vectorized numpy traversal or,
        under ``REPRO_JIT`` with numba importable, the compiled scalar
        kernel from :mod:`repro.indexes.kernels` -- bit-identical either
        way (see tests/indexes/test_probe_batch.py).
        """
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        count = len(keys)
        if out.ndim != 1 or out.dtype != np.int64:
            raise SimulationError(
                f"probe_batch needs a 1-D int64 output buffer, got "
                f"{out.ndim}-D {out.dtype}"
            )
        if offset < 0 or offset + count > len(out):
            raise SimulationError(
                f"output window [{offset}, {offset + count}) exceeds the "
                f"buffer of {len(out)} positions"
            )
        if count == 0:
            return PerfCounters()
        view = out[offset : offset + count]
        if obs.enabled():
            with obs.span("index.probe_batch", index=self.name,
                          lookups=count):
                self._probe_kernel(keys, view)
            obs.add("index.batch_lookups", float(count), index=self.name)
            obs.add("index.batch_kernels", index=self.name)
        else:
            self._probe_kernel(keys, view)
        return self._batch_counters(count)

    def _probe_kernel(self, keys: np.ndarray, out: np.ndarray) -> None:
        """One fused pass over ``keys``; results land in ``out``.

        Dispatches to the compiled scalar kernel when the JIT backend is
        enabled and this index advertises one, otherwise runs the
        vectorized traversal.  ``keys`` is already ``KEY_DTYPE`` and
        ``out`` is exactly ``len(keys)`` wide.
        """
        if jit.enabled():
            runner = jit.runner_for(self)
            if runner is not None:
                runner(keys, out)
                return
        out[:] = self._traverse(keys, recorder=None)

    def _batch_kernel_args(self):
        """(kernel name, packed structure args) or None when not JIT-able.

        The base implementation opts out; each concrete index overrides
        it when its structure can be expressed as the plain arrays the
        scalar kernels in :mod:`repro.indexes.kernels` consume.
        """
        return None

    def _batch_counters(self, count: int) -> PerfCounters:
        """Structural fused-counter delta for a batch of ``count`` keys."""
        return PerfCounters(
            lookups=float(count),
            memory_accesses=float(count * self.height),
            # int64 positions are key-sized (8 B each).
            result_bytes=float(count * KEY_BYTES),
        )

    # ------------------------------------------------------------------
    # Fused range-probe kernel (non-equi joins).
    # ------------------------------------------------------------------

    def _lower_bound(self, keys: np.ndarray) -> np.ndarray:
        """First column position with key >= probe; ``len(column)`` if none.

        The non-equi range primitive under :meth:`probe_range_batch`.
        Each index derives it from the same structure its ``_traverse``
        walks (tree descent, spline prediction, ...), so range probes
        have the locality profile of two equality probes.
        """
        raise NotImplementedError(
            f"{self.name} does not implement the range primitive"
        )

    def _range_bounds(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-key [start, end) span of column keys in ``[lo, hi]``.

        ``start`` is the lower bound of ``lo``; ``end`` is the upper
        bound of ``hi`` (its lower bound plus an equality bump, exact
        because column keys are unique).  Inverted inputs (``lo > hi``)
        produce the empty span ``[start, start)``.
        """
        n = len(self.column)
        starts = self._lower_bound(lo)
        ends = self._lower_bound(hi)
        in_range = ends < n
        safe = np.where(in_range, ends, 0)
        ends = ends + (in_range & (self.column.key_at(safe) == hi)).astype(
            np.int64
        )
        return starts, np.maximum(ends, starts)

    def probe_range_batch(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        out_start: np.ndarray,
        out_end: np.ndarray,
        offset: int = 0,
    ) -> PerfCounters:
        """Fused batch range probe into caller-owned span buffers.

        Writes, for each key pair, the half-open span ``[start, end)``
        of column positions whose keys fall in ``[lo[i], hi[i]]`` into
        ``out_start[offset : offset + count]`` /
        ``out_end[offset : offset + count]``, and returns the batch's
        structural :class:`PerfCounters` delta (two bound traversals per
        pair, so twice :meth:`probe_batch`'s access count).  Like
        ``probe_batch``, the kernel is either the vectorized numpy
        bounds or, under ``REPRO_JIT``, a compiled scalar twin from
        :mod:`repro.indexes.kernels` -- bit-identical either way.
        """
        lo = np.asarray(lo, dtype=KEY_DTYPE)
        hi = np.asarray(hi, dtype=KEY_DTYPE)
        count = len(lo)
        if len(hi) != count:
            raise SimulationError(
                f"range bounds must have equal length: {count} != {len(hi)}"
            )
        for buffer, label in ((out_start, "start"), (out_end, "end")):  # repro: noqa[PERF001] -- two-element argument validation, not per-key work
            if buffer.ndim != 1 or buffer.dtype != np.int64:
                raise SimulationError(
                    f"probe_range_batch needs 1-D int64 {label} buffers, "
                    f"got {buffer.ndim}-D {buffer.dtype}"
                )
            if offset < 0 or offset + count > len(buffer):
                raise SimulationError(
                    f"output window [{offset}, {offset + count}) exceeds "
                    f"the {label} buffer of {len(buffer)} positions"
                )
        if count == 0:
            return PerfCounters()
        start_view = out_start[offset : offset + count]
        end_view = out_end[offset : offset + count]
        if obs.enabled():
            with obs.span("index.probe_range_batch", index=self.name,
                          lookups=count):
                self._range_kernel(lo, hi, start_view, end_view)
            obs.add("index.range_lookups", float(count), index=self.name)
            obs.add("index.range_kernels", index=self.name)
        else:
            self._range_kernel(lo, hi, start_view, end_view)
        return self._range_batch_counters(count)

    def _range_kernel(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        out_start: np.ndarray,
        out_end: np.ndarray,
    ) -> None:
        """One fused range pass; spans land in the output views."""
        if jit.enabled():
            runner = jit.range_runner_for(self)
            if runner is not None:
                runner(lo, hi, out_start, out_end)
                return
        starts, ends = self._range_bounds(lo, hi)
        out_start[:] = starts
        out_end[:] = ends

    def _range_kernel_args(self):
        """(range-kernel name, packed structure args) or None.

        Mirrors :meth:`_batch_kernel_args` for the range kernels in
        :mod:`repro.indexes.kernels`; the base implementation opts out.
        """
        return None

    def _range_batch_counters(self, count: int) -> PerfCounters:
        """Structural fused-counter delta for ``count`` range probes.

        A range probe runs two bound traversals (lo and hi) and writes
        two int64 span endpoints per pair.
        """
        return PerfCounters(
            lookups=float(count),
            memory_accesses=float(2 * count * self.height),
            result_bytes=float(2 * count * KEY_BYTES),
        )

    def trace_lookups(self, keys: np.ndarray) -> LookupResult:
        """Lookup with full access tracing for the machine model."""
        self._require_placed()
        keys = np.asarray(keys)
        if len(keys) == 0:
            raise SimulationError("cannot trace an empty lookup batch")
        if not obs.enabled():
            recorder = TraceRecorder(len(keys))
            positions = self._traverse(keys, recorder=recorder)
            trace = recorder.build()
            simt = self._simt_cost(trace.steps_per_lookup)
            return LookupResult(positions=positions, trace=trace, simt=simt)
        with obs.span("index.probe", index=self.name, lookups=len(keys)) as probe:
            recorder = TraceRecorder(len(keys))
            positions = self._traverse(keys, recorder=recorder)
            trace = recorder.build()
            simt = self._simt_cost(trace.steps_per_lookup)
            probe.set("steps", trace.num_steps)
        obs.add("index.traced_lookups", float(len(keys)), index=self.name)
        obs.add(
            "index.trace_accesses",
            float(trace.total_accesses),
            index=self.name,
        )
        obs.add("index.trace_steps", float(trace.num_steps), index=self.name)
        return LookupResult(positions=positions, trace=trace, simt=simt)

    def _simt_cost(self, steps_per_lookup: np.ndarray) -> SimtCost:
        """SIMT accounting; one thread per lookup unless overridden."""
        return divergent_cost(steps_per_lookup, warp_size=32)

    # ------------------------------------------------------------------
    # Analytic locality (partition-ordered TLB model; see
    # repro.perf.analytic for why this is closed-form).
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def expected_sweep_pages(
        self,
        window_lookups: float,
        page_bytes: int,
        l2_bytes: int,
        cacheline_bytes: int,
    ) -> float:
        """Expected distinct TLB pages touched by one partition-ordered
        window of ``window_lookups`` lookups."""
