"""A FAST-style implicit BFS search tree (Kim et al., SIGMOD 2010 [24]).

The paper's related work (Section 2.2) lists FAST among the
GPU-optimized index structures.  FAST stores a binary search tree in
breadth-first (Eytzinger) order: the root at slot 1, node ``k``'s
children at ``2k`` and ``2k+1``.  Compared to binary search over the
sorted array, the layout concentrates the hot upper levels into a few
contiguous cachelines, so they stay resident; compared to a B+tree it
needs no separator logic.  (Real FAST adds hierarchical page/SIMD
blocking; this model keeps the plain Eytzinger layout and documents the
difference.)

Like the other indexes, the tree is *implicit* over the sorted column:
the key of BFS slot ``k`` is computable from ``k`` alone, so a 120 GiB
tree costs no real memory -- but its simulated footprint (a full BFS copy
of the keys, padded to a complete tree) is charged to host memory.

Not part of the paper's evaluated quartet; used by the extension
experiments and available through the planner.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..data.column import KEY_DTYPE
from ..data.relation import Relation
from ..errors import SimulationError
from ..hardware.memory import MemorySpace, SystemMemory
from ..perf.analytic import level_sweep_pages
from ..units import KEY_BYTES
from .base import Index, TraceRecorder
from .domain import clamped_int64

_MAX_KEY = np.uint64(np.iinfo(np.uint64).max)


class FastTreeIndex(Index):
    """Implicit Eytzinger-layout binary search tree over a sorted column."""

    name = "FAST tree"
    supports_updates = False
    # Divergent one-lookup-per-lane traversal, like plain binary search.
    tlb_replay_factor = 8.0

    def __init__(self, relation: Relation):
        super().__init__(relation)
        n = len(self.column)
        #: tree height: levels of the padded complete tree.
        self.tree_height = max(1, math.ceil(math.log2(n + 1)))
        #: slots of the padded complete tree (1-based BFS, slot 0 unused).
        self.padded_slots = (1 << self.tree_height) - 1
        self._allocation = None
        self._placed = False

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------

    @property
    def footprint_bytes(self) -> int:
        # A BFS copy of the keys, padded to the complete tree.
        return self.padded_slots * KEY_BYTES

    @property
    def height(self) -> int:
        return self.tree_height

    def place(self, memory: SystemMemory) -> None:
        if self.relation.allocation is None:
            raise SimulationError(
                "place the relation before placing its FAST tree"
            )
        self._allocation = memory.allocate(
            self.footprint_bytes, MemorySpace.HOST, label="FAST tree"
        )
        self._placed = True

    # ------------------------------------------------------------------
    # Implicit BFS <-> rank mapping.
    # ------------------------------------------------------------------

    def _ranks_of_slots(self, slots: np.ndarray) -> np.ndarray:
        """In-order rank of 1-based BFS slots in the padded complete tree.

        Slot ``k`` at depth ``d`` is the ``(k - 2^d)``-th node of its
        level; its subtree spans ``2^(h-d)`` ranks, and the node sits in
        the middle: ``rank = (k - 2^d) * 2^(h-d) + 2^(h-d-1) - 1``.
        """
        slots = slots.astype(np.int64)
        # frexp exponents of 1-based slots are exactly 1..64; the clamp
        # keeps the float-derived depth provably in shift range (NP002).
        depth = clamped_int64(
            np.frexp(slots.astype(np.float64))[1].astype(np.float64) - 1.0,
            0.0,
            63.0,
        )
        level_start = np.int64(1) << depth
        subtree = np.int64(1) << (self.tree_height - depth)
        return (slots - level_start) * subtree + (subtree >> 1) - 1

    def _keys_of_slots(self, slots: np.ndarray) -> np.ndarray:
        """Keys stored at BFS slots; padding slots hold MAX."""
        ranks = self._ranks_of_slots(slots)
        n = len(self.column)
        exists = ranks < n
        safe = np.where(exists, ranks, 0)
        keys = self.column.key_at(safe)
        return np.where(exists, keys, _MAX_KEY)

    # ------------------------------------------------------------------
    # Traversal (vectorized Eytzinger lower bound).
    # ------------------------------------------------------------------

    def _traverse(
        self, keys: np.ndarray, recorder: Optional[TraceRecorder]
    ) -> np.ndarray:
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        count = len(keys)
        slots = np.ones(count, dtype=np.int64)
        base = self._allocation.base if recorder is not None else 0
        for __ in range(self.tree_height):  # repro: noqa[PERF001] -- O(height) per-level descent over whole key arrays
            if recorder is not None:
                recorder.record(base + slots * KEY_BYTES)
            slot_keys = self._keys_of_slots(slots)
            slots = 2 * slots + (slot_keys < keys).astype(np.int64)
        # Lower-bound extraction: drop the trailing 1-bits plus one --
        # the last left turn on the search path is the lower bound.
        trailing_one_block = (~slots) & (slots + 1)  # == 1 << trailing_ones
        # log2 of a power of two in [1, 2^63] is exactly 0..63; the
        # clamp makes the float->int64 cast provably in range (NP002).
        shift = clamped_int64(
            np.log2(trailing_one_block.astype(np.float64)), 0.0, 63.0
        )
        bound_slots = slots >> (shift + 1)
        found_mask = bound_slots > 0
        if recorder is not None:
            # Final verification read of the candidate match.
            recorder.record(
                base + np.where(found_mask, bound_slots, 1) * KEY_BYTES,
                active=found_mask,
            )
        safe_slots = np.where(found_mask, bound_slots, 1)
        ranks = self._ranks_of_slots(safe_slots)
        n = len(self.column)
        in_range = found_mask & (ranks < n)
        safe_ranks = np.where(in_range, ranks, 0)
        matches = in_range & (self.column.key_at(safe_ranks) == keys)
        return np.where(matches, ranks, np.int64(-1))

    def _lower_bound(self, keys: np.ndarray) -> np.ndarray:
        """Lower bound via the Eytzinger descent's trailing-ones trick.

        The descent computes the lower bound over the MAX-padded
        complete tree; padding ranks start at ``n``, so clamping to
        ``n`` maps "first match is padding" to the insertion point at
        the end of the data.  ``bound_slots == 0`` (no left turn at
        all) means every key is below the probe: lower bound ``n``.
        """
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        count = len(keys)
        slots = np.ones(count, dtype=np.int64)
        for __ in range(self.tree_height):  # repro: noqa[PERF001] -- O(height) per-level descent over whole key arrays
            slot_keys = self._keys_of_slots(slots)
            slots = 2 * slots + (slot_keys < keys).astype(np.int64)
        trailing_one_block = (~slots) & (slots + 1)
        shift = clamped_int64(
            np.log2(trailing_one_block.astype(np.float64)), 0.0, 63.0
        )
        bound_slots = slots >> (shift + 1)
        found_mask = bound_slots > 0
        n = len(self.column)
        safe_slots = np.where(found_mask, bound_slots, 1)
        ranks = self._ranks_of_slots(safe_slots)
        return np.where(
            found_mask, np.minimum(ranks, n), np.int64(n)
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # Analytic locality.
    # ------------------------------------------------------------------

    def expected_sweep_pages(
        self,
        window_lookups: float,
        page_bytes: int,
        l2_bytes: int,
        cacheline_bytes: int,
    ) -> float:
        """BFS levels are contiguous arrays; sweep each level once.

        This is FAST's locality advantage over plain binary search: level
        ``d`` occupies a contiguous ``2^d * 8`` bytes, so the upper levels
        fit the L2 and the lower ones sweep like B+tree levels instead of
        scattering like mid-tree jumps.
        """
        total = 0.0
        cumulative = 0
        for depth in range(self.tree_height):  # repro: noqa[PERF001] -- O(height) analytic locality sum, not per-key
            level_bytes = (1 << depth) * KEY_BYTES
            if cumulative + level_bytes <= l2_bytes:
                cumulative += level_bytes
                continue
            cumulative += level_bytes
            total += level_sweep_pages(
                window_lookups=window_lookups,
                span_bytes=level_bytes,
                page_bytes=page_bytes,
            )
        return total
