"""Domain-clamped float->int64 casts for index math.

``ndarray.astype(np.int64)`` on a float value outside the int64 range
is undefined behavior in numpy -- the exact bug the PR-5 Hypothesis
suite caught in the RadixSpline probe, where an out-of-domain key made
the spline extrapolate past ``2**63`` before the bounds check ran.
:func:`clamped_int64` is the sanctioned way to leave float space:
clamp to the caller's known domain first, then round, then cast.  The
``NP002`` flow rule treats it (like ``np.clip``) as the sanitizer that
makes a float->int64 cast safe, so every probe-key cast routed through
it is statically provably in range.
"""

from __future__ import annotations

import numpy as np

__all__ = ["clamped_int64"]


def clamped_int64(
    values: np.ndarray, low: float, high: float
) -> np.ndarray:
    """Round ``values`` to int64 after clamping into ``[low, high]``.

    The clamp happens in float space (clip, then round-half-even, then
    cast), so the cast itself can never see an out-of-range value.
    ``high`` must be exactly representable in float64 (fine for every
    index domain: positions are bounded by relation cardinality, well
    below ``2**53``).
    """
    return np.rint(np.clip(values, low, high)).astype(np.int64)
