"""Domain-clamped float->int64 casts for index math.

``ndarray.astype(np.int64)`` on a float value outside the int64 range
is undefined behavior in numpy -- the exact bug the PR-5 Hypothesis
suite caught in the RadixSpline probe, where an out-of-domain key made
the spline extrapolate past ``2**63`` before the bounds check ran.
:func:`clamped_int64` is the sanctioned way to leave float space:
clamp to the caller's known domain first, then round, then cast.  The
``NP002`` flow rule treats it (like ``np.clip``) as the sanitizer that
makes a float->int64 cast safe, so every probe-key cast routed through
it is statically provably in range.
"""

from __future__ import annotations

import numpy as np

__all__ = ["clamped_int64", "saturating_band"]


def clamped_int64(
    values: np.ndarray, low: float, high: float
) -> np.ndarray:
    """Round ``values`` to int64 after clamping into ``[low, high]``.

    The clamp happens in float space (clip, then round-half-even, then
    cast), so the cast itself can never see an out-of-range value.
    ``high`` must be exactly representable in float64 (fine for every
    index domain: positions are bounded by relation cardinality, well
    below ``2**53``).
    """
    return np.rint(np.clip(values, low, high)).astype(np.int64)


def saturating_band(values: np.ndarray, epsilon) -> tuple:
    """``[key - epsilon, key + epsilon]`` with uint64 saturation.

    The band-join bounds primitive: subtraction saturates at 0 and
    addition at ``2**64 - 1`` instead of wrapping, so a probe near a
    domain edge keeps a meaningful (clamped) band rather than wrapping
    to the far end of the key space.  ``epsilon`` may be a scalar or a
    per-key array; both are taken modulo-free as uint64.
    """
    keys = np.atleast_1d(np.asarray(values, dtype=np.uint64))
    eps = np.asarray(epsilon, dtype=np.uint64)
    with np.errstate(over="ignore"):
        lo = keys - eps
        hi = keys + eps
    lo = np.where(lo > keys, np.uint64(0), lo)
    hi = np.where(hi < keys, np.uint64(np.iinfo(np.uint64).max), hi)
    return lo, hi
