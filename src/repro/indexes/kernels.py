"""Scalar batch-probe kernels: one source for numba and the interpreter.

Each function here is the per-key, loop-form twin of one index's
vectorized ``_traverse`` -- same comparisons, same clamps, same sentinel
handling, same float expression order -- so the two implementations are
bit-identical on every input (the Hypothesis suite in
tests/indexes/test_probe_batch.py drives all key regimes through both).

They exist in loop form because that is what ``numba.njit`` compiles
into a single fused machine-code pass (see :mod:`repro.indexes.jit`):
traversal, payload gather, and the match check run per key with no
intermediate arrays, which is the GPU-kernel execution shape the paper's
probe loop has.  **The interpreter never runs these on a hot path**: with
``REPRO_JIT`` off or numba absent, ``probe_batch`` uses the vectorized
numpy traversal instead.  Plain-Python execution is reserved for the
differential tests, where running the exact kernel source uncompiled is
what makes "JIT vs numpy" a two-sided proof even on machines without
numba.

All kernels share one shape: ``kernel(probes, out, col, *structure)``
where ``probes`` is uint64, ``out`` is a preallocated int64 view of the
same length, ``col`` is the materialized sorted key column, and
``structure`` holds the index geometry as plain arrays/scalars (numba
cannot consume the index objects themselves).
"""

from __future__ import annotations

import numpy as np

#: "No separator / padding slot" sentinel, as in btree.py / harmonia.py.
_MAX_KEY = np.uint64(np.iinfo(np.uint64).max)


def binary_search_batch(probes, out, col):
    """Lower-bound bisection of the full column, per probe key."""
    n = col.shape[0]
    for i in range(probes.shape[0]):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
        key = probes[i]
        lo = 0
        hi = n
        while lo < hi:
            mid = (lo + hi) >> 1
            if col[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < n and col[lo] == key:
            out[i] = lo
        else:
            out[i] = -1


def btree_batch(probes, out, col, level_sizes, level_coverage, fanout,
                leaf_entries):
    """Implicit B+tree descent: upper-bound per internal level, then the
    leaf lower bound, mirroring ``BPlusTreeIndex._traverse`` exactly."""
    n = col.shape[0]
    height = level_sizes.shape[0]
    num_separators = fanout - 1
    for i in range(probes.shape[0]):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
        key = probes[i]
        node = 0
        for level in range(height - 1):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
            child_coverage = level_coverage[level + 1]
            slot_lo = 0
            slot_hi = num_separators
            while slot_lo < slot_hi:
                mid = (slot_lo + slot_hi) >> 1
                first = (
                    (node * fanout + mid + 1) * child_coverage * leaf_entries
                )
                if first < n:
                    go_right = col[first] <= key
                else:
                    # Missing separators read as MAX (padding past the
                    # data); MAX <= key only for the maximal probe key.
                    go_right = key == _MAX_KEY
                if go_right:
                    slot_lo = mid + 1
                else:
                    slot_hi = mid
            node = node * fanout + slot_lo
            limit = level_sizes[level + 1] - 1
            if node > limit:
                node = limit
        slot_lo = 0
        slot_hi = leaf_entries
        while slot_lo < slot_hi:
            mid = (slot_lo + slot_hi) >> 1
            position = node * leaf_entries + mid
            # Padding slots hold MAX, and MAX < key is never true.
            if position < n and col[position] < key:
                slot_lo = mid + 1
            else:
                slot_hi = mid
        position = node * leaf_entries + slot_lo
        if slot_lo < leaf_entries and position < n and col[position] == key:
            out[i] = position
        else:
            out[i] = -1


def harmonia_batch(probes, out, col, level_sizes, level_coverage,
                   node_keys):
    """Harmonia descent: count node keys <= probe per level, mirroring
    ``HarmoniaIndex._node_child_counts`` / ``_traverse`` exactly."""
    n = col.shape[0]
    height = level_sizes.shape[0]
    for i in range(probes.shape[0]):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
        key = probes[i]
        node = 0
        for level in range(height):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
            if level + 1 < height:
                child_coverage = level_coverage[level + 1]
            else:
                child_coverage = 1
            node_first = node * node_keys
            lo = 0
            hi = node_keys
            while lo < hi:
                mid = (lo + hi) >> 1
                position = (node_first + mid) * child_coverage
                if position < n:
                    go_right = col[position] <= key
                else:
                    go_right = key == _MAX_KEY
                if go_right:
                    lo = mid + 1
                else:
                    hi = mid
            child = lo - 1
            if child < 0:
                child = 0
            if level + 1 < height:
                node = node * node_keys + child
                limit = level_sizes[level + 1] - 1
                if node > limit:
                    node = limit
            else:
                position = node * node_keys + child
                if position < n and col[position] == key:
                    out[i] = position
                else:
                    out[i] = -1


def radix_spline_batch(probes, out, col, radix_table, spline_keys,
                       spline_positions, min_key, span_key, shift,
                       error_bound):
    """RadixSpline lookup: radix slot, spline search, interpolation,
    bounded data search -- float expression order matches
    ``RadixSplineIndex._traverse`` so predictions are bit-identical."""
    n = col.shape[0]
    num_points = spline_keys.shape[0]
    last_slot = radix_table.shape[0] - 1
    top = float(n - 1)
    for i in range(probes.shape[0]):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
        key = probes[i]
        # Clamp-then-subtract in uint64, as in _traverse.
        if key > min_key:
            clipped = key - min_key
        else:
            clipped = np.uint64(0)
        if clipped > span_key:
            clipped = span_key
        prefix = np.int64(clipped >> shift)
        seg_lo = radix_table[prefix]
        nxt = prefix + 1
        if nxt > last_slot:
            nxt = last_slot
        seg_hi = radix_table[nxt] + 1
        if seg_hi < seg_lo + 1:
            seg_hi = seg_lo + 1
        if seg_hi > num_points:
            seg_hi = num_points
        lo = seg_lo
        hi = seg_hi
        while lo < hi:
            mid = (lo + hi) >> 1
            if spline_keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        upper = lo
        if upper < 1:
            upper = 1
        if upper > num_points - 1:
            upper = num_points - 1
        lower = upper - 1
        key_low = spline_keys[lower]
        key_high = spline_keys[upper]
        pos_low = float(spline_positions[lower])
        pos_high = float(spline_positions[upper])
        span = float(key_high - key_low)
        if span < 1.0:
            span = 1.0
        if key > key_low:
            delta = float(key - key_low)
        else:
            delta = 0.0
        predicted = pos_low + delta / span * (pos_high - pos_low)
        if predicted < 0.0:
            predicted = 0.0
        if predicted > top:
            predicted = top
        # round() is round-half-to-even in both CPython and numba --
        # the same rounding np.rint applies on the vectorized path.
        estimate = round(predicted)
        search_lo = estimate - error_bound
        if search_lo < 0:
            search_lo = 0
        search_hi = estimate + error_bound + 1
        if search_hi > n:
            search_hi = n
        while search_lo < search_hi:
            mid = (search_lo + search_hi) >> 1
            if col[mid] < key:
                search_lo = mid + 1
            else:
                search_hi = mid
        if search_lo < n and col[search_lo] == key:
            out[i] = search_lo
        else:
            out[i] = -1


# ----------------------------------------------------------------------
# Range kernels: per-pair [start, end) spans for the non-equi joins.
#
# Same shape family as the batch kernels above, with two probe arrays
# and two output buffers: ``kernel(lo_keys, hi_keys, out_start, out_end,
# col, *structure)``.  Each kernel runs the index's lower-bound descent
# twice (once per bound), bumps the end past an exact hi match (column
# keys are unique), and clamps inverted spans empty -- mirroring
# ``Index._range_bounds`` plus each index's ``_lower_bound`` exactly.
# ----------------------------------------------------------------------


def binary_search_range_batch(lo_keys, hi_keys, out_start, out_end, col):
    """Span over the sorted column: lower bound of lo, upper bound of hi."""
    n = col.shape[0]
    for i in range(lo_keys.shape[0]):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
        lo_key = lo_keys[i]
        hi_key = hi_keys[i]
        lo = 0
        hi = n
        while lo < hi:
            mid = (lo + hi) >> 1
            if col[mid] < lo_key:
                lo = mid + 1
            else:
                hi = mid
        start = lo
        lo = 0
        hi = n
        while lo < hi:
            mid = (lo + hi) >> 1
            if col[mid] < hi_key:
                lo = mid + 1
            else:
                hi = mid
        end = lo
        if end < n and col[end] == hi_key:
            end += 1
        if end < start:
            end = start
        out_start[i] = start
        out_end[i] = end


def btree_range_batch(lo_keys, hi_keys, out_start, out_end, col,
                      level_sizes, level_coverage, fanout, leaf_entries):
    """B+tree span: two descents per pair; internal levels as in
    ``btree_batch``, the leaf returning the clamped insertion position
    (``BPlusTreeIndex._lower_bound``)."""
    n = col.shape[0]
    height = level_sizes.shape[0]
    num_separators = fanout - 1
    for i in range(lo_keys.shape[0]):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
        for side in range(2):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
            if side == 0:
                key = lo_keys[i]
            else:
                key = hi_keys[i]
            node = 0
            for level in range(height - 1):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
                child_coverage = level_coverage[level + 1]
                slot_lo = 0
                slot_hi = num_separators
                while slot_lo < slot_hi:
                    mid = (slot_lo + slot_hi) >> 1
                    first = (
                        (node * fanout + mid + 1)
                        * child_coverage
                        * leaf_entries
                    )
                    if first < n:
                        go_right = col[first] <= key
                    else:
                        go_right = key == _MAX_KEY
                    if go_right:
                        slot_lo = mid + 1
                    else:
                        slot_hi = mid
                node = node * fanout + slot_lo
                limit = level_sizes[level + 1] - 1
                if node > limit:
                    node = limit
            slot_lo = 0
            slot_hi = leaf_entries
            while slot_lo < slot_hi:
                mid = (slot_lo + slot_hi) >> 1
                position = node * leaf_entries + mid
                if position < n and col[position] < key:
                    slot_lo = mid + 1
                else:
                    slot_hi = mid
            bound = node * leaf_entries + slot_lo
            if bound > n:
                bound = n
            if side == 0:
                out_start[i] = bound
            else:
                if bound < n and col[bound] == key:
                    bound += 1
                out_end[i] = bound
        if out_end[i] < out_start[i]:
            out_end[i] = out_start[i]


def harmonia_range_batch(lo_keys, hi_keys, out_start, out_end, col,
                         level_sizes, level_coverage, node_keys):
    """Harmonia span: internal descent as in ``harmonia_batch``, strict
    leaf count for the insertion slot (``HarmoniaIndex._lower_bound``)."""
    n = col.shape[0]
    height = level_sizes.shape[0]
    for i in range(lo_keys.shape[0]):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
        for side in range(2):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
            if side == 0:
                key = lo_keys[i]
            else:
                key = hi_keys[i]
            node = 0
            for level in range(height - 1):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
                child_coverage = level_coverage[level + 1]
                node_first = node * node_keys
                lo = 0
                hi = node_keys
                while lo < hi:
                    mid = (lo + hi) >> 1
                    position = (node_first + mid) * child_coverage
                    if position < n:
                        go_right = col[position] <= key
                    else:
                        go_right = key == _MAX_KEY
                    if go_right:
                        lo = mid + 1
                    else:
                        hi = mid
                child = lo - 1
                if child < 0:
                    child = 0
                node = node * node_keys + child
                limit = level_sizes[level + 1] - 1
                if node > limit:
                    node = limit
            node_first = node * node_keys
            lo = 0
            hi = node_keys
            while lo < hi:
                mid = (lo + hi) >> 1
                position = node_first + mid
                # Padding slots read as MAX, and MAX < key is never true.
                if position < n and col[position] < key:
                    lo = mid + 1
                else:
                    hi = mid
            bound = node * node_keys + lo
            if bound > n:
                bound = n
            if side == 0:
                out_start[i] = bound
            else:
                if bound < n and col[bound] == key:
                    bound += 1
                out_end[i] = bound
        if out_end[i] < out_start[i]:
            out_end[i] = out_start[i]


def radix_spline_range_batch(lo_keys, hi_keys, out_start, out_end, col,
                             radix_table, spline_keys, spline_positions,
                             min_key, span_key, shift, error_bound):
    """RadixSpline span: the batch kernel's prediction, then a widened
    (+-(error_bound + 2)) lower-bound search per bound -- float
    expression order matches ``RadixSplineIndex._predict`` so the two
    backends agree bit for bit (see ``_lower_bound`` for the margin)."""
    n = col.shape[0]
    num_points = spline_keys.shape[0]
    last_slot = radix_table.shape[0] - 1
    top = float(n - 1)
    margin = error_bound + 2
    for i in range(lo_keys.shape[0]):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
        for side in range(2):  # repro: noqa[PERF001] -- kernel source: compiled by numba, never interpreted on a hot path
            if side == 0:
                key = lo_keys[i]
            else:
                key = hi_keys[i]
            if key > min_key:
                clipped = key - min_key
            else:
                clipped = np.uint64(0)
            if clipped > span_key:
                clipped = span_key
            prefix = np.int64(clipped >> shift)
            seg_lo = radix_table[prefix]
            nxt = prefix + 1
            if nxt > last_slot:
                nxt = last_slot
            seg_hi = radix_table[nxt] + 1
            if seg_hi < seg_lo + 1:
                seg_hi = seg_lo + 1
            if seg_hi > num_points:
                seg_hi = num_points
            lo = seg_lo
            hi = seg_hi
            while lo < hi:
                mid = (lo + hi) >> 1
                if spline_keys[mid] < key:
                    lo = mid + 1
                else:
                    hi = mid
            upper = lo
            if upper < 1:
                upper = 1
            if upper > num_points - 1:
                upper = num_points - 1
            lower = upper - 1
            key_low = spline_keys[lower]
            key_high = spline_keys[upper]
            pos_low = float(spline_positions[lower])
            pos_high = float(spline_positions[upper])
            span = float(key_high - key_low)
            if span < 1.0:
                span = 1.0
            if key > key_low:
                delta = float(key - key_low)
            else:
                delta = 0.0
            predicted = pos_low + delta / span * (pos_high - pos_low)
            if predicted < 0.0:
                predicted = 0.0
            if predicted > top:
                predicted = top
            estimate = round(predicted)
            search_lo = estimate - margin
            if search_lo < 0:
                search_lo = 0
            search_hi = estimate + margin + 1
            if search_hi > n:
                search_hi = n
            while search_lo < search_hi:
                mid = (search_lo + search_hi) >> 1
                if col[mid] < key:
                    search_lo = mid + 1
                else:
                    search_hi = mid
            bound = search_lo
            if side == 0:
                out_start[i] = bound
            else:
                if bound < n and col[bound] == key:
                    bound += 1
                out_end[i] = bound
        if out_end[i] < out_start[i]:
            out_end[i] = out_start[i]
