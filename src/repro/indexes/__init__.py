"""Index structures evaluated by the paper (Section 3.1).

Four indexes over a sorted key column, all usable functionally (exact
lookups on real or virtual columns) and under simulation (producing the
address traces the machine model replays):

* :class:`~repro.indexes.binary_search.BinarySearchIndex` -- no auxiliary
  structure; searches the base column directly.
* :class:`~repro.indexes.btree.BPlusTreeIndex` -- a textbook B+tree with
  4 KiB nodes.
* :class:`~repro.indexes.harmonia.HarmoniaIndex` -- Yan et al.'s
  GPU-optimized B+tree: 32-key nodes in a breadth-first key region,
  children located by prefix sums, cooperative sub-warp traversal.
* :class:`~repro.indexes.radix_spline.RadixSplineIndex` -- Kipf et al.'s
  single-pass learned index: spline points plus a radix table.
"""

from .base import Index, LookupResult, TraceRecorder
from .binary_search import BinarySearchIndex
from .btree import BPlusTreeIndex
from .domain import clamped_int64
from .fast_tree import FastTreeIndex
from .harmonia import HarmoniaIndex
from .radix_spline import RadixSplineIndex

#: All paper indexes, in the order the figures list them.
ALL_INDEX_TYPES = (
    BPlusTreeIndex,
    BinarySearchIndex,
    HarmoniaIndex,
    RadixSplineIndex,
)

#: Additional structures from the paper's related work (Section 2.2),
#: implemented as extensions; not part of the paper's evaluated quartet.
EXTENSION_INDEX_TYPES = (FastTreeIndex,)

__all__ = [
    "Index",
    "LookupResult",
    "TraceRecorder",
    "BinarySearchIndex",
    "BPlusTreeIndex",
    "FastTreeIndex",
    "HarmoniaIndex",
    "RadixSplineIndex",
    "ALL_INDEX_TYPES",
    "EXTENSION_INDEX_TYPES",
    "clamped_int64",
]
