"""RadixSpline: a single-pass learned index (Kipf et al., aiDM 2020).

A RadixSpline consists of (Section 2.2 of the reproduced paper):

* *spline points* -- a subset of (key, position) pairs such that linear
  interpolation between neighbouring points predicts any key's position
  within ``max_error``;
* a *radix table* -- an array indexed by the most significant bits of a
  key, pointing at the first spline point of each radix partition.

A lookup reads one radix-table slot, binary-searches the (few) spline
points of that partition for the surrounding pair, interpolates, and
finishes with a bounded binary search of the data -- a handful of memory
accesses regardless of data size, which is why the paper finds the
RadixSpline the fastest out-of-core index (1.1-1.8x over Harmonia,
Section 6).

Two builders:

* ``fit="greedy"`` -- the real GreedySplineCorridor one-pass algorithm,
  for materialized columns;
* ``fit="uniform"`` -- spline points at fixed position intervals with the
  actual maximum interpolation error measured (materialized) or bounded by
  construction (virtual columns, whose per-segment linearity guarantees an
  error of one position).

Spline density matters for out-of-core behaviour: on real uniform-random
keys, the CDF deviates from a line like a random walk, so a corridor of
width ``max_error`` collapses roughly every ``max_error**2`` positions.
Virtual columns are piecewise-linear by construction and would admit an
unrealistically sparse spline; ``uniform_interval`` therefore defaults to
``max_error**2``, giving the spline array the size (hundreds of MB at
111 GiB) and the per-lookup access pattern a real build would have.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .. import obs
from ..data.column import KEY_DTYPE, MaterializedColumn, VirtualSortedColumn
from ..data.relation import Relation
from ..errors import ConfigurationError, SimulationError
from ..hardware.memory import MemorySpace, SystemMemory
from ..perf.analytic import level_sweep_pages
from ..units import KEY_BYTES
from .base import Index, TraceRecorder
from .domain import clamped_int64

#: Bytes per spline point: 8 B key + 8 B position.
_SPLINE_POINT_BYTES = 16


def greedy_spline_corridor(
    keys: np.ndarray, max_error: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The GreedySplineCorridor algorithm over a sorted key array.

    Maintains a corridor of feasible slopes from the last spline point;
    emits a new point whenever the next key's +-max_error corridor no
    longer intersects the running one.  Returns (spline_keys,
    spline_positions), always including the first and last key.
    """
    if max_error < 1:
        raise ConfigurationError(f"max_error must be >= 1, got {max_error}")
    n = len(keys)
    if n == 0:
        raise ConfigurationError("cannot fit a spline to an empty column")
    if n <= 2:
        positions = np.arange(n, dtype=np.int64)
        return keys.copy(), positions
    point_keys = [int(keys[0])]
    point_positions = [0]
    # Key deltas are computed in exact integer arithmetic: float64 has a
    # 53-bit mantissa, so ``float(key) - float(anchor)`` rounds to zero
    # for adjacent keys above ~2^53 and would reject a valid column.
    anchor_key = int(keys[0])
    anchor_pos = 0.0
    slope_low = -math.inf
    slope_high = math.inf
    for position in range(1, n):  # repro: noqa[PERF001] -- one-pass greedy spline build, build-time only
        key = int(keys[position])
        dx = float(key - anchor_key)
        if dx <= 0:
            raise ConfigurationError("keys must be strictly increasing")
        candidate_low = (position - max_error - anchor_pos) / dx
        candidate_high = (position + max_error - anchor_pos) / dx
        if candidate_low > slope_high or candidate_high < slope_low:
            # Corridor collapsed: the previous key becomes a spline point.
            previous = position - 1
            point_keys.append(int(keys[previous]))
            point_positions.append(previous)
            anchor_key = int(keys[previous])
            anchor_pos = float(previous)
            dx = float(key - anchor_key)
            slope_low = (position - max_error - anchor_pos) / dx
            slope_high = (position + max_error - anchor_pos) / dx
        else:
            slope_low = max(slope_low, candidate_low)
            slope_high = min(slope_high, candidate_high)
    if point_positions[-1] != n - 1:
        point_keys.append(int(keys[n - 1]))
        point_positions.append(n - 1)
    return (
        np.asarray(point_keys, dtype=KEY_DTYPE),
        np.asarray(point_positions, dtype=np.int64),
    )


def measure_spline_error(
    keys: np.ndarray, point_keys: np.ndarray, point_positions: np.ndarray
) -> int:
    """Exact maximum interpolation error of a spline over sorted keys.

    The greedy corridor bounds each point against a *feasible* line, but
    the chord actually chosen between knots can exceed the corridor at
    intermediate points; production RadixSpline implementations carry the
    same caveat.  Lookups therefore use the measured bound, which makes
    correctness independent of the builder's tightness.
    """
    n = len(keys)
    positions = np.arange(n, dtype=np.float64)
    segment = np.clip(
        np.searchsorted(point_keys, keys, side="right") - 1,
        0,
        len(point_keys) - 2,
    )
    key_low = point_keys[segment]
    pos_low = point_positions[segment].astype(np.float64)
    pos_high = point_positions[segment + 1].astype(np.float64)
    # Subtract in uint64 (exact) before converting to float: converting
    # the raw keys first loses the low bits of large keys and measures
    # the error of a different prediction than lookups compute.
    span = np.maximum(
        (point_keys[segment + 1] - key_low).astype(np.float64), 1.0
    )
    predicted = pos_low + (keys - key_low).astype(np.float64) / span * (
        pos_high - pos_low
    )
    return int(np.ceil(np.abs(predicted - positions).max()))


def uniform_spline(
    column, interval: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Spline points at fixed position intervals, plus the achieved error.

    For virtual columns the error is 1 by construction (piecewise-linear
    keys with bounded noise); for materialized columns it is measured.
    """
    if interval < 2:
        raise ConfigurationError(f"interval must be >= 2, got {interval}")
    n = len(column)
    positions = np.arange(0, n, interval, dtype=np.int64)
    if positions[-1] != n - 1:
        positions = np.append(positions, n - 1)
    keys = column.key_at(positions)
    if isinstance(column, VirtualSortedColumn):
        return keys, positions, max(1, column.hint_error_bound())
    # Measure the achieved interpolation error on the materialized data.
    all_keys = column.key_at(np.arange(n, dtype=np.int64))
    error = measure_spline_error(all_keys, keys, positions)
    return keys, positions, max(1, error)


class RadixSplineIndex(Index):
    """RadixSpline over a sorted column: radix table + spline points."""

    name = "RadixSpline"
    supports_updates = False
    tlb_replay_factor = 6.0

    def __init__(
        self,
        relation: Relation,
        max_error: int = 32,
        radix_bits: int = 18,
        fit: str = "auto",
        uniform_interval: int = None,
    ):
        super().__init__(relation)
        if max_error < 1:
            raise ConfigurationError(f"max_error must be >= 1, got {max_error}")
        if uniform_interval is None:
            uniform_interval = max(2, max_error * max_error)
        if radix_bits < 1 or radix_bits > 28:
            raise ConfigurationError(
                f"radix_bits must be in [1, 28], got {radix_bits}"
            )
        if fit not in ("auto", "greedy", "uniform"):
            raise ConfigurationError(f"unknown fit mode: {fit!r}")
        self.radix_bits = radix_bits
        self.max_error = max_error
        if fit == "auto":
            fit = (
                "uniform"
                if isinstance(self.column, VirtualSortedColumn)
                else "greedy"
            )
        self.fit = fit
        #: Non-None selects the implicit (grid-positioned) spline.
        self._uniform_interval = None
        if fit == "greedy":
            if not isinstance(self.column, MaterializedColumn):
                raise ConfigurationError(
                    "greedy fitting needs a materialized column; use "
                    "fit='uniform' for virtual columns"
                )
            self.spline_keys, self.spline_positions = greedy_spline_corridor(
                self.column.keys, max_error
            )
            # The chord between greedy knots can exceed the corridor at
            # intermediate points; bound the data search by the measured
            # error so lookups stay exact (see measure_spline_error).
            self.error_bound = max(
                max_error,
                measure_spline_error(
                    self.column.keys, self.spline_keys, self.spline_positions
                ),
            )
        else:
            interval = min(uniform_interval, max(2, len(self.column)))
            if isinstance(self.column, VirtualSortedColumn):
                # Implicit spline: points lie on a fixed position grid, so
                # the (key, position) arrays -- hundreds of MB at 111 GiB
                # -- are never materialized.  Gathers go through
                # ``column.key_at`` on demand (see _spline_key_at), which
                # keeps build time and resident memory proportional to the
                # radix table instead of the spline.
                self._uniform_interval = interval
                n = len(self.column)
                base_points = -(-n // interval)
                aligned = interval * (base_points - 1) == n - 1
                self._num_points = base_points if aligned else base_points + 1
                self.spline_keys = None
                self.spline_positions = None
                measured_error = max(1, self.column.hint_error_bound())
            else:
                self.spline_keys, self.spline_positions, measured_error = (
                    uniform_spline(self.column, interval)
                )
            # Report the configured bound, not the (possibly smaller)
            # measured one: a real spline over data this size would search
            # a +-max_error window, and the access pattern should match.
            self.error_bound = max(measured_error, max_error)
        self._build_radix_table()
        self._radix_allocation = None
        self._spline_allocation = None
        self._placed = False

    # ------------------------------------------------------------------
    # Radix table.
    # ------------------------------------------------------------------

    def _spline_position_at(self, indices: np.ndarray) -> np.ndarray:
        """Column position of each spline point (vectorized)."""
        if self._uniform_interval is not None:
            return np.minimum(
                np.asarray(indices, dtype=np.int64) * self._uniform_interval,
                len(self.column) - 1,
            )
        return self.spline_positions[indices]

    def _spline_key_at(self, indices: np.ndarray) -> np.ndarray:
        """Key of each spline point; implicit splines gather on demand."""
        if self._uniform_interval is not None:
            return self.column.key_at(self._spline_position_at(indices))
        return self.spline_keys[indices]

    def _build_radix_table(self) -> None:
        num_points = self.num_spline_points
        ends = self._spline_key_at(np.asarray([0, num_points - 1]))
        min_key = int(ends[0])
        max_key = int(ends[1])
        span_bits = max(1, (max_key - min_key + 1).bit_length())
        self._min_key = min_key
        self._max_spline_key = max_key
        self._shift = max(0, span_bits - self.radix_bits)
        num_slots = ((max_key - min_key) >> self._shift) + 2
        slots = np.arange(num_slots, dtype=np.int64)
        # table[p] = index of the first spline point with prefix >= p.
        # Prefixes subtract min_key in uint64 before the shift: an int64
        # cast of keys >= 2^63 wraps negative and scrambles the table.
        if self._uniform_interval is None:
            prefixes = (
                (self.spline_keys - np.uint64(min_key))
                >> np.uint64(self._shift)
            ).astype(np.int64)
            self.radix_table = np.searchsorted(
                prefixes, slots, side="left"
            ).astype(np.int64)
            return
        # Implicit spline: prefixes are nondecreasing in the spline index,
        # so a coarse prefix sample narrows every slot to a small window
        # and a vectorized binary search finishes exactly -- identical to
        # the searchsorted above without materializing all spline keys.
        coarse = 64
        coarse_prefixes = (
            (
                self._spline_key_at(
                    np.arange(0, num_points, coarse, dtype=np.int64)
                )
                - np.uint64(min_key)
            )
            >> np.uint64(self._shift)
        ).astype(np.int64)
        block = np.searchsorted(coarse_prefixes, slots, side="left")
        hi = np.minimum(block * coarse, num_points)
        lo = np.maximum((block - 1) * coarse + 1, 0)
        active = lo < hi
        while active.any():
            mid = (lo + hi) >> 1
            prefix = (
                (
                    self._spline_key_at(np.where(active, mid, 0))
                    - np.uint64(min_key)
                )
                >> np.uint64(self._shift)
            ).astype(np.int64)
            go_left = active & (prefix >= slots)
            hi = np.where(go_left, mid, hi)
            lo = np.where(active & ~go_left, mid + 1, lo)
            active = lo < hi
        self.radix_table = lo.astype(np.int64)

    @property
    def num_spline_points(self) -> int:
        if self._uniform_interval is not None:
            return self._num_points
        return len(self.spline_keys)

    @property
    def footprint_bytes(self) -> int:
        return (
            len(self.radix_table) * KEY_BYTES
            + self.num_spline_points * _SPLINE_POINT_BYTES
        )

    @property
    def height(self) -> int:
        # radix table -> spline points -> bounded data search
        return 3

    def place(self, memory: SystemMemory) -> None:
        if self.relation.allocation is None:
            raise SimulationError(
                "place the relation before placing its RadixSpline"
            )
        self._radix_allocation = memory.allocate(
            len(self.radix_table) * KEY_BYTES,
            MemorySpace.HOST,
            label="RadixSpline radix table",
        )
        self._spline_allocation = memory.allocate(
            self.num_spline_points * _SPLINE_POINT_BYTES,
            MemorySpace.HOST,
            label="RadixSpline points",
        )
        self._placed = True

    # ------------------------------------------------------------------
    # Traversal.
    # ------------------------------------------------------------------

    def _predict(
        self, keys: np.ndarray, recorder: Optional[TraceRecorder]
    ) -> np.ndarray:
        """Predicted column position of each key (steps 1-3 of a lookup).

        Shared by ``_traverse`` (which finishes with the +-error_bound
        data search) and ``_lower_bound`` (which widens the window; see
        there).  The prediction is the piecewise-linear spline evaluated
        at the probe, so it is monotone in the key -- the property the
        range primitive's window-width argument rests on.
        """
        count = len(keys)
        n = len(self.column)
        # 1. Radix table: one read per lookup.  Clamp-then-subtract in
        # uint64: an int64 cast of keys >= 2^63 wraps negative, and a
        # uint64 subtraction below min_key wraps huge -- both scramble
        # the radix slot.
        min_key = np.uint64(self._min_key)
        span = np.uint64(self._max_spline_key - self._min_key)
        clipped = np.where(keys > min_key, keys - min_key, np.uint64(0))
        clipped = np.minimum(clipped, span)
        prefixes = (clipped >> np.uint64(self._shift)).astype(np.int64)
        if recorder is not None:
            recorder.record(
                self._radix_allocation.base + prefixes * KEY_BYTES
            )
        seg_lo = self.radix_table[prefixes]
        seg_hi = self.radix_table[
            np.minimum(prefixes + 1, len(self.radix_table) - 1)
        ]
        seg_hi = np.minimum(
            np.maximum(seg_hi + 1, seg_lo + 1), self.num_spline_points
        )
        # 2. Binary search the partition's spline points for the first
        #    point with key >= probe (the upper interpolation point).
        lo = seg_lo.astype(np.int64)
        hi = seg_hi.astype(np.int64)
        active = lo < hi
        spline_rounds = 0
        while active.any():
            spline_rounds += 1
            mid = (lo + hi) >> 1
            if recorder is not None:
                recorder.record(
                    self._spline_allocation.base + mid * _SPLINE_POINT_BYTES,
                    active=active,
                )
            mid_keys = self._spline_key_at(np.where(active, mid, 0))
            go_right = active & (mid_keys < keys)
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
            active = lo < hi
        upper = np.clip(lo, 1, self.num_spline_points - 1)
        lower = upper - 1
        if recorder is not None:
            # Fetch the two surrounding points (often one cacheline).
            recorder.record(
                self._spline_allocation.base + lower * _SPLINE_POINT_BYTES
            )
        # 3. Interpolate.  Deltas are formed in uint64 (exact) before the
        # float conversion; probes below their segment's lower point
        # (out-of-domain keys routed to slot 0) clamp to a zero delta.
        key_low = self._spline_key_at(lower)
        key_high = self._spline_key_at(upper)
        pos_low = self._spline_position_at(lower).astype(np.float64)
        pos_high = self._spline_position_at(upper).astype(np.float64)
        span = np.maximum((key_high - key_low).astype(np.float64), 1.0)
        delta = np.where(
            keys > key_low, keys - key_low, np.uint64(0)
        ).astype(np.float64)
        predicted = pos_low + delta / span * (pos_high - pos_low)
        # Clamp before the int cast: probes far above their segment
        # (out-of-domain keys -- guaranteed misses) can predict past the
        # int64 range, and float->int64 overflow is undefined.
        if obs.enabled():
            obs.add(
                "index.spline_search_rounds",
                float(spline_rounds),
                index=self.name,
            )
        return clamped_int64(predicted, 0.0, float(n - 1))

    def _traverse(
        self, keys: np.ndarray, recorder: Optional[TraceRecorder]
    ) -> np.ndarray:
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        count = len(keys)
        n = len(self.column)
        estimate = self._predict(keys, recorder)
        # 4. Bounded binary search of the data.
        search_lo = np.maximum(estimate - self.error_bound, 0)
        search_hi = np.minimum(estimate + self.error_bound + 1, n)
        base = (
            self.relation.allocation.base
            if recorder is not None and self.relation.allocation is not None
            else 0
        )
        active = search_lo < search_hi
        data_rounds = 0
        while active.any():
            data_rounds += 1
            mid = (search_lo + search_hi) >> 1
            if recorder is not None:
                recorder.record(base + mid * KEY_BYTES, active=active)
            mid_keys = self.column.key_at(np.where(active, mid, 0))
            go_right = active & (mid_keys < keys)
            search_lo = np.where(go_right, mid + 1, search_lo)
            search_hi = np.where(active & ~go_right, mid, search_hi)
            active = search_lo < search_hi
        if obs.enabled():
            obs.add(
                "index.data_search_rounds",
                float(data_rounds),
                index=self.name,
            )
        in_range = search_lo < n
        if recorder is not None:
            recorder.record(
                base + np.where(in_range, search_lo, 0) * KEY_BYTES,
                active=in_range,
            )
        found = np.zeros(count, dtype=bool)
        if in_range.any():
            candidate = np.where(in_range, search_lo, 0)
            found = in_range & (self.column.key_at(candidate) == keys)
        return np.where(found, search_lo, np.int64(-1))

    def _lower_bound(self, keys: np.ndarray) -> np.ndarray:
        """Lower bound via the spline prediction and a *widened* search.

        ``error_bound`` is measured over member keys only.  For an
        absent probe between keys ``k_i < q < k_{i+1}`` the insertion
        point is ``i + 1`` while the monotone prediction lies in
        ``[predicted(k_i), predicted(k_{i+1})] <= [i - e, i + 1 + e]``,
        so the true insertion point is within ``e + 1`` of the
        prediction (out-of-domain probes clamp within the same bound).
        Rounding adds at most one more position; the search window is
        therefore widened to ``error_bound + 2`` on each side.
        """
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        n = len(self.column)
        estimate = self._predict(keys, None)
        margin = self.error_bound + 2
        search_lo = np.maximum(estimate - margin, 0)
        search_hi = np.minimum(estimate + margin + 1, n)
        active = search_lo < search_hi
        while active.any():
            mid = (search_lo + search_hi) >> 1
            mid_keys = self.column.key_at(np.where(active, mid, 0))
            go_right = active & (mid_keys < keys)
            search_lo = np.where(go_right, mid + 1, search_lo)
            search_hi = np.where(active & ~go_right, mid, search_hi)
            active = search_lo < search_hi
        return search_lo

    def _batch_kernel_args(self):
        """Scalar-kernel packing; implicit (virtual-column) splines gather
        keys on demand and cannot be expressed over plain arrays."""
        if self.spline_keys is None or not isinstance(
            self.column, MaterializedColumn
        ):
            return None
        return (
            "radix_spline_batch",
            (
                self.column.keys,
                self.radix_table,
                self.spline_keys,
                self.spline_positions,
                np.uint64(self._min_key),
                np.uint64(self._max_spline_key - self._min_key),
                np.uint64(self._shift),
                np.int64(self.error_bound),
            ),
        )

    def _range_kernel_args(self):
        if self.spline_keys is None or not isinstance(
            self.column, MaterializedColumn
        ):
            return None
        return (
            "radix_spline_range_batch",
            (
                self.column.keys,
                self.radix_table,
                self.spline_keys,
                self.spline_positions,
                np.uint64(self._min_key),
                np.uint64(self._max_spline_key - self._min_key),
                np.uint64(self._shift),
                np.int64(self.error_bound),
            ),
        )

    # ------------------------------------------------------------------
    # Analytic locality.
    # ------------------------------------------------------------------

    def expected_sweep_pages(
        self,
        window_lookups: float,
        page_bytes: int,
        l2_bytes: int,
        cacheline_bytes: int,
    ) -> float:
        total = 0.0
        cumulative = 0
        structure_spans = (
            len(self.radix_table) * KEY_BYTES,
            self.num_spline_points * _SPLINE_POINT_BYTES,
        )
        for span in structure_spans:  # repro: noqa[PERF001] -- O(#structures) analytic locality sum, not per-key
            if cumulative + span <= l2_bytes:
                cumulative += span
                continue
            cumulative += span
            total += level_sweep_pages(
                window_lookups=window_lookups,
                span_bytes=span,
                page_bytes=page_bytes,
            )
        # The bounded data search touches a +-error_bound neighbourhood of
        # the true position: effectively one page per lookup region.
        total += level_sweep_pages(
            window_lookups=window_lookups,
            span_bytes=self.column.nbytes,
            page_bytes=page_bytes,
        )
        return total
