"""Harmonia: a GPU-optimized B+tree (Yan et al., PPoPP 2019).

Harmonia's three structural ideas, all modelled here:

* the tree's keys live in one breadth-first *key region* array -- no
  intra-node pointers, so a node is a dense run of ``node_keys`` keys
  (32 in the paper's configuration, i.e. 256 B = two cachelines);
* children are located through a *prefix-sum child array* instead of
  pointers (one 4-byte entry per node);
* traversal is *cooperative*: a warp is partitioned into sub-warps, and a
  sub-warp searches one node for one lookup by comparing all node keys in
  parallel, then moves on to the next lookup of its lane group
  (Section 3.3.1 of the reproduced paper).

The key region is implicit over the sorted column (same reasoning as
:mod:`repro.indexes.btree`): node ``j`` at a level covering ``c`` column
positions per child stores key ``s`` = first key of child ``s``.  The
access pattern per node visit is two cacheline reads (the node) plus one
child-array read, matching the cooperative search.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import obs
from ..config import DEFAULT_HARMONIA_NODE_KEYS
from ..data.column import KEY_DTYPE
from ..data.relation import Relation
from ..errors import ConfigurationError, SimulationError
from ..gpu.simt import SimtCost, subwarp_lookup_cost
from ..hardware.memory import MemorySpace, SystemMemory
from ..perf.analytic import level_sweep_pages
from ..units import KEY_BYTES
from .base import Index, TraceRecorder

_MAX_KEY = np.uint64(np.iinfo(np.uint64).max)

#: Bytes per prefix-sum child-array entry.
_CHILD_ENTRY_BYTES = 4


class HarmoniaIndex(Index):
    """Harmonia B+tree with key region + prefix-sum child array."""

    name = "Harmonia"
    supports_updates = True
    # Calibrated to the paper's Fig. 4: ~11.3 translation requests per key
    # at 111 GiB over ~0.8 last-level misses per lookup (the cooperative
    # traversal touches one new huge page per lookup -- the leaf).
    tlb_replay_factor = 14.0

    def __init__(
        self,
        relation: Relation,
        node_keys: int = DEFAULT_HARMONIA_NODE_KEYS,
        subwarp_size: int = 8,
        warp_size: int = 32,
    ):
        super().__init__(relation)
        if node_keys < 2:
            raise ConfigurationError(f"node_keys must be >= 2, got {node_keys}")
        if warp_size % subwarp_size != 0:
            raise ConfigurationError(
                f"sub-warp size {subwarp_size} must divide warp size {warp_size}"
            )
        self.node_keys = node_keys
        self.subwarp_size = subwarp_size
        self.warp_size = warp_size
        self._build_geometry()
        self._key_region = None
        self._child_array = None
        self._placed = False

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------

    def _build_geometry(self) -> None:
        n = len(self.column)
        fanout = self.node_keys  # one key per child: key s = min of child s
        num_leaves = -(-n // self.node_keys)
        sizes: List[int] = [num_leaves]
        while sizes[0] > 1:
            sizes.insert(0, -(-sizes[0] // fanout))
        self.level_sizes = sizes
        #: column positions covered by one node of each level.
        coverage = [self.node_keys] * len(sizes)
        for level in range(len(sizes) - 2, -1, -1):  # repro: noqa[PERF001] -- build-time geometry, O(height) iterations
            coverage[level] = coverage[level + 1] * fanout
        self.level_coverage = coverage
        offsets = []
        total = 0
        for size in sizes:  # repro: noqa[PERF001] -- build-time geometry, O(height) iterations
            offsets.append(total)
            total += size
        #: node-offset of each level in the breadth-first key region.
        self.level_offsets = offsets
        self.total_nodes = total

    @property
    def fanout(self) -> int:
        return self.node_keys

    @property
    def footprint_bytes(self) -> int:
        key_region = self.total_nodes * self.node_keys * KEY_BYTES
        child_array = self.total_nodes * _CHILD_ENTRY_BYTES
        return key_region + child_array

    @property
    def height(self) -> int:
        return len(self.level_sizes)

    def place(self, memory: SystemMemory) -> None:
        if self.relation.allocation is None:
            raise SimulationError(
                "place the relation before placing its Harmonia index"
            )
        self._key_region = memory.allocate(
            self.total_nodes * self.node_keys * KEY_BYTES,
            MemorySpace.HOST,
            label="Harmonia key region",
        )
        self._child_array = memory.allocate(
            self.total_nodes * _CHILD_ENTRY_BYTES,
            MemorySpace.HOST,
            label="Harmonia child array",
        )
        self._placed = True

    # ------------------------------------------------------------------
    # Implicit node contents.
    # ------------------------------------------------------------------

    def _node_keys_matrix(
        self, level: int, nodes: np.ndarray
    ) -> np.ndarray:
        """All ``node_keys`` keys of each node: shape (len(nodes), node_keys).

        Key ``s`` of a node is the first column key covered by its child
        ``s`` (for leaves: simply the s-th covered key); MAX past the data.
        """
        child_coverage = (
            self.level_coverage[level + 1]
            if level + 1 < len(self.level_sizes)
            else 1
        )
        slots = np.arange(self.node_keys, dtype=np.int64)
        first_positions = (
            nodes[:, None] * self.node_keys + slots[None, :]
        ) * child_coverage
        n = len(self.column)
        exists = first_positions < n
        safe = np.where(exists, first_positions, 0)
        keys = self.column.key_at(safe.reshape(-1)).reshape(safe.shape)
        return np.where(exists, keys, _MAX_KEY)

    def _node_child_counts(
        self,
        level: int,
        nodes: np.ndarray,
        keys: np.ndarray,
        strict: bool = False,
    ) -> np.ndarray:
        """Per lane: how many of its node's keys are <= the probe.

        Equivalent to ``(self._node_keys_matrix(level, nodes) <=
        keys[:, None]).sum(axis=1)`` without materializing the
        (lanes, node_keys) matrix: node keys are nondecreasing (strictly
        increasing while backed by data, MAX-padded past it), so a
        vectorized binary search over the key slots gathers
        ``log2(node_keys)`` keys per lane instead of ``node_keys``.

        ``strict=True`` counts keys strictly below the probe instead --
        the leaf-level variant the range primitive's lower bound needs.
        """
        child_coverage = (
            self.level_coverage[level + 1]
            if level + 1 < len(self.level_sizes)
            else 1
        )
        n = len(self.column)
        node_first = nodes * self.node_keys
        lo = np.zeros(len(nodes), dtype=np.int64)
        hi = np.full(len(nodes), self.node_keys, dtype=np.int64)
        active = lo < hi
        while active.any():
            mid = (lo + hi) >> 1
            positions = (node_first + mid) * child_coverage
            exists = active & (positions < n)
            slot_keys = self.column.key_at(np.where(exists, positions, 0))
            mid_keys = np.where(exists, slot_keys, _MAX_KEY)
            if strict:
                go_right = active & (mid_keys < keys)
            else:
                go_right = active & (mid_keys <= keys)
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
            active = lo < hi
        return lo

    # ------------------------------------------------------------------
    # Traversal.
    # ------------------------------------------------------------------

    def _traverse(
        self, keys: np.ndarray, recorder: Optional[TraceRecorder]
    ) -> np.ndarray:
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        count = len(keys)
        if obs.enabled():
            obs.add(
                "index.node_visits",
                float(count * len(self.level_sizes)),
                index=self.name,
            )
        nodes = np.zeros(count, dtype=np.int64)
        lines_per_node = max(
            1, (self.node_keys * KEY_BYTES + 127) // 128
        )
        for level in range(len(self.level_sizes)):  # repro: noqa[PERF001] -- O(height) per-level descent over whole key arrays
            if recorder is not None:
                node_base = (
                    self._key_region.base
                    + (self.level_offsets[level] + nodes)
                    * self.node_keys
                    * KEY_BYTES
                )
                # Cooperative search reads the whole node: one access per
                # cacheline it spans.
                for line in range(lines_per_node):  # repro: noqa[PERF001] -- O(node cachelines) trace recording, traced path only
                    recorder.record(node_base + line * 128)
                # Child location via the prefix-sum array (tiny, hot).
                child_base = self._child_array.base + (
                    (self.level_offsets[level] + nodes) * _CHILD_ENTRY_BYTES
                )
                recorder.record(child_base)
            # child = (number of node keys <= probe) - 1; key 0 is the
            # subtree minimum, so the count is >= 1 for in-range probes.
            counts = self._node_child_counts(level, nodes, keys)
            child = np.maximum(counts - 1, 0).astype(np.int64)
            if level + 1 < len(self.level_sizes):
                nodes = nodes * self.fanout + child
                nodes = np.minimum(nodes, self.level_sizes[level + 1] - 1)
            else:
                positions = nodes * self.node_keys + child
                n = len(self.column)
                in_range = positions < n
                safe = np.where(in_range, positions, 0)
                found = in_range & (self.column.key_at(safe) == keys)
                return np.where(found, positions, np.int64(-1))
        raise SimulationError("traversal fell off the tree")  # pragma: no cover

    def _lower_bound(self, keys: np.ndarray) -> np.ndarray:
        """Lower bound via the key-region descent.

        Internal levels descend exactly as ``_traverse`` does; at the
        leaf the strict count (keys < probe) is the local insertion
        slot, and dense leaf packing makes ``leaf * node_keys + slot``
        the global insertion position for absent probes too.
        """
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        nodes = np.zeros(len(keys), dtype=np.int64)
        height = len(self.level_sizes)
        for level in range(height - 1):  # repro: noqa[PERF001] -- O(height) per-level descent over whole key arrays
            counts = self._node_child_counts(level, nodes, keys)
            child = np.maximum(counts - 1, 0).astype(np.int64)
            nodes = np.minimum(
                nodes * self.fanout + child, self.level_sizes[level + 1] - 1
            )
        counts_lt = self._node_child_counts(
            height - 1, nodes, keys, strict=True
        )
        return np.minimum(
            nodes * self.node_keys + counts_lt, len(self.column)
        )

    def _batch_kernel_args(self):
        """Scalar-kernel packing: geometry as plain int64 arrays."""
        from ..data.column import MaterializedColumn

        if not isinstance(self.column, MaterializedColumn):
            return None
        return (
            "harmonia_batch",
            (
                self.column.keys,
                np.asarray(self.level_sizes, dtype=np.int64),
                np.asarray(self.level_coverage, dtype=np.int64),
                self.node_keys,
            ),
        )

    def _range_kernel_args(self):
        from ..data.column import MaterializedColumn

        if not isinstance(self.column, MaterializedColumn):
            return None
        return (
            "harmonia_range_batch",
            (
                self.column.keys,
                np.asarray(self.level_sizes, dtype=np.int64),
                np.asarray(self.level_coverage, dtype=np.int64),
                self.node_keys,
            ),
        )

    # ------------------------------------------------------------------
    # SIMT: cooperative sub-warp execution.
    # ------------------------------------------------------------------

    def _simt_cost(self, steps_per_lookup: np.ndarray) -> SimtCost:
        # Each node visit costs node_keys / subwarp_size cooperative
        # comparison rounds for the owning sub-warp.
        rounds_per_visit = max(1, self.node_keys // self.subwarp_size)
        visits = np.asarray(steps_per_lookup, dtype=np.float64) / (
            max(1, (self.node_keys * KEY_BYTES + 127) // 128) + 1
        )
        return subwarp_lookup_cost(
            visits * rounds_per_visit,
            warp_size=self.warp_size,
            subwarp_size=self.subwarp_size,
        )

    # ------------------------------------------------------------------
    # Updates.
    # ------------------------------------------------------------------

    def insert_keys(self, new_keys: np.ndarray) -> "HarmoniaIndex":
        """Merge-and-rebuild insert, as for the B+tree (laptop scale)."""
        from ..data.column import MaterializedColumn

        if not isinstance(self.column, MaterializedColumn):
            raise SimulationError(
                "inserts require a materialized column; virtual columns are "
                "immutable by construction"
            )
        new_keys = np.asarray(new_keys, dtype=KEY_DTYPE)
        merged = np.union1d(self.column.keys, new_keys)
        if len(merged) != len(self.column) + len(np.unique(new_keys)):
            raise ConfigurationError(
                "duplicate keys are not allowed: R holds unique keys "
                "(paper Section 3.2)"
            )
        relation = Relation(
            name=self.relation.name, column=MaterializedColumn(merged)
        )
        return HarmoniaIndex(
            relation,
            node_keys=self.node_keys,
            subwarp_size=self.subwarp_size,
            warp_size=self.warp_size,
        )

    # ------------------------------------------------------------------
    # Analytic locality.
    # ------------------------------------------------------------------

    def expected_sweep_pages(
        self,
        window_lookups: float,
        page_bytes: int,
        l2_bytes: int,
        cacheline_bytes: int,
    ) -> float:
        total = 0.0
        cumulative = 0
        for size in self.level_sizes:  # repro: noqa[PERF001] -- O(height) analytic locality sum, not per-key
            level_bytes = size * self.node_keys * KEY_BYTES
            if cumulative + level_bytes <= l2_bytes:
                cumulative += level_bytes
                continue
            cumulative += level_bytes
            total += level_sweep_pages(
                window_lookups=window_lookups,
                span_bytes=level_bytes,
                page_bytes=page_bytes,
            )
        return total
