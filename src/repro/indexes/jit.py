"""Opt-in numba backend for the fused batch kernels (``REPRO_JIT``).

Dispatch contract, layered so every configuration degrades gracefully:

1. ``REPRO_JIT`` unset/falsy -> :func:`runner_for` is never consulted and
   ``probe_batch`` runs the vectorized numpy traversal (byte-identical to
   the pre-JIT code path);
2. flag set but numba not importable -> :func:`enabled` stays False after
   one cached import attempt; same numpy fallback, no warning spam;
3. flag set, numba present, but the index is not kernel-compatible (a
   virtual column, or an implicit spline) -> :func:`runner_for` returns
   None and that one index falls back while others compile;
4. otherwise the kernel source from :mod:`repro.indexes.kernels` is
   ``njit``-compiled once per process and reused for every batch.

Compiled and fallback paths are bit-identical -- positions, counters,
and exported JSON -- which tests/indexes/test_probe_batch.py proves by
running the same kernel source uncompiled against the numpy traversal.

Indexes advertise their kernel through ``_batch_kernel_args()`` (see
:class:`repro.indexes.base.Index`): the kernel's name here plus the
packed structure arguments, or None when the index cannot be expressed
over plain arrays.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..config import jit_requested
from . import kernels

#: Compiled kernels by function name, one entry per process.
_compiled: Dict[str, Callable] = {}

#: Tri-state import probe: None = not yet attempted.
_numba_available: Optional[bool] = None


def numba_available() -> bool:
    """Whether numba imports; probed once and cached."""
    global _numba_available
    if _numba_available is None:
        try:
            import numba  # noqa: F401

            _numba_available = True
        except Exception:
            # ImportError is the normal case; anything else (a broken
            # install) must also degrade to the numpy path.
            _numba_available = False
    return _numba_available


def enabled() -> bool:
    """Whether compiled kernels are requested *and* compilable."""
    return jit_requested() and numba_available()


def backend_name() -> str:
    """Human-readable backend label for bench payloads."""
    return "numba" if enabled() else "numpy"


def refresh() -> None:
    """Drop cached probe state (tests toggle REPRO_JIT / fake numba)."""
    global _numba_available
    _numba_available = None
    _compiled.clear()


def compiled_kernel(name: str) -> Callable:
    """The ``njit``-compiled version of ``kernels.<name>`` (cached)."""
    func = _compiled.get(name)
    if func is None:
        import numba

        func = numba.njit(nogil=True)(getattr(kernels, name))
        _compiled[name] = func
    return func


def runner_for(index, compile: bool = True) -> Optional[Callable]:
    """A ``runner(probes, out)`` closure for ``index``, or None.

    ``compile=False`` binds the plain-Python kernel source instead of the
    compiled version -- the hook the differential tests use to prove the
    kernel source itself (not just numba's output) matches the numpy
    traversal on machines without numba.
    """
    spec = index._batch_kernel_args()
    if spec is None:
        return None
    name, args = spec
    func = compiled_kernel(name) if compile else getattr(kernels, name)

    def runner(probes: np.ndarray, out: np.ndarray) -> None:
        func(probes, out, *args)

    return runner


def range_runner_for(index, compile: bool = True) -> Optional[Callable]:
    """A ``runner(lo, hi, out_start, out_end)`` closure, or None.

    Range twin of :func:`runner_for`, consulting
    ``index._range_kernel_args()``; the same ``compile=False`` hook lets
    the differential tests interpret the range kernel source directly.
    """
    spec = index._range_kernel_args()
    if spec is None:
        return None
    name, args = spec
    func = compiled_kernel(name) if compile else getattr(kernels, name)

    def runner(
        lo: np.ndarray,
        hi: np.ndarray,
        out_start: np.ndarray,
        out_end: np.ndarray,
    ) -> None:
        func(lo, hi, out_start, out_end, *args)

    return runner
