"""A textbook B+tree with 4 KiB nodes (paper Section 3.2).

The tree is *implicit*: because R's key column is sorted and static, node
contents are fully determined by the column, so separator keys are computed
from it instead of being copied into materialized arrays.  Addresses,
node/level geometry, and therefore the memory access pattern are identical
to a materialized dense-packed B+tree; the footprint is charged to
simulated host memory at placement time, which reproduces the paper's
capacity limits ("size limit of R is reduced for the B+tree and Harmonia
due to memory capacity constraints").

Layout per 4 KiB node:

* internal node: 255 separator keys (8 B each) + 256 child pointers;
  separator ``s`` is the first key of child ``s+1``;
* leaf node: 512 keys of 8 B.  The index is clustered on the sorted
  relation, so a leaf entry's row position is implicit
  (``leaf * entries + slot``) and no payload is stored -- which is what
  lets the paper measure the B+tree at 111 GiB within 256 GiB of CPU
  memory.  ``leaf_payload_bytes=8`` switches to payload-bearing 16-byte
  entries (halving leaf capacity and doubling the footprint); the
  capacity ablation uses it to show where such a tree stops fitting.

For a materialized column the same class also supports appends/inserts at
laptop scale (``insert_keys``), reflecting the paper's Section 6 remark
that tree indexes remain the choice when updates are required.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import obs
from ..config import DEFAULT_BTREE_NODE_BYTES
from ..data.column import KEY_DTYPE, MaterializedColumn
from ..data.relation import Relation
from ..errors import ConfigurationError, SimulationError
from ..hardware.memory import MemorySpace, SystemMemory
from ..perf.analytic import level_sweep_pages
from ..units import KEY_BYTES
from .base import Index, TraceRecorder

#: Sentinel for "no separator here" (child beyond the data).
_MAX_KEY = np.uint64(np.iinfo(np.uint64).max)


class BPlusTreeIndex(Index):
    """Implicit dense-packed B+tree over a sorted column."""

    name = "B+tree"
    supports_updates = True
    # Divergent binary search within nodes: same replay behaviour as the
    # plain binary search.
    tlb_replay_factor = 8.0

    def __init__(
        self,
        relation: Relation,
        node_bytes: int = DEFAULT_BTREE_NODE_BYTES,
        leaf_payload_bytes: int = 0,
    ):
        super().__init__(relation)
        if node_bytes < 64 or node_bytes % 16 != 0:
            raise ConfigurationError(
                f"node size must be >= 64 and a multiple of 16, got {node_bytes}"
            )
        if leaf_payload_bytes < 0:
            raise ConfigurationError(
                f"leaf payload must be non-negative, got {leaf_payload_bytes}"
            )
        self.node_bytes = node_bytes
        self.leaf_payload_bytes = leaf_payload_bytes
        #: entries per leaf (keys only by default; see module docstring).
        self.leaf_entries = node_bytes // (KEY_BYTES + leaf_payload_bytes)
        if self.leaf_entries < 1:
            raise ConfigurationError(
                f"leaf payload of {leaf_payload_bytes} B leaves no room for "
                f"entries in a {node_bytes} B node"
            )
        #: children per internal node: F pointers + (F-1) keys of 8 B each.
        self.fanout = (node_bytes + KEY_BYTES) // (2 * KEY_BYTES)
        self._build_geometry()
        self._allocation = None
        self._placed = False

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------

    def _build_geometry(self) -> None:
        n = len(self.column)
        num_leaves = -(-n // self.leaf_entries)
        sizes: List[int] = [num_leaves]
        while sizes[0] > 1:
            sizes.insert(0, -(-sizes[0] // self.fanout))
        #: nodes per level, root (index 0) to leaves (index -1).
        self.level_sizes = sizes
        #: leaves covered by one node of each level.
        coverage = [1] * len(sizes)
        for level in range(len(sizes) - 2, -1, -1):  # repro: noqa[PERF001] -- build-time geometry, O(height) iterations
            coverage[level] = coverage[level + 1] * self.fanout
        self.level_coverage = coverage
        #: node-offset of each level in the flat node array.
        offsets = []
        total = 0
        for size in sizes:  # repro: noqa[PERF001] -- build-time geometry, O(height) iterations
            offsets.append(total)
            total += size
        self.level_offsets = offsets
        self.total_nodes = total

    @property
    def footprint_bytes(self) -> int:
        return self.total_nodes * self.node_bytes

    @property
    def height(self) -> int:
        return len(self.level_sizes)

    @property
    def num_leaves(self) -> int:
        return self.level_sizes[-1]

    def place(self, memory: SystemMemory) -> None:
        if self.relation.allocation is None:
            raise SimulationError(
                "place the relation before placing its B+tree"
            )
        self._allocation = memory.allocate(
            self.footprint_bytes, MemorySpace.HOST, label="B+tree"
        )
        self._placed = True

    def _node_address(self, level: int, nodes: np.ndarray) -> np.ndarray:
        return (
            self._allocation.base
            + (self.level_offsets[level] + nodes) * self.node_bytes
        )

    # ------------------------------------------------------------------
    # Implicit node contents.
    # ------------------------------------------------------------------

    def _separator_keys(
        self, level: int, nodes: np.ndarray, slots: np.ndarray
    ) -> np.ndarray:
        """Separator ``slots`` of internal ``nodes`` at ``level``.

        Separator s = first key of child s+1 = column key at position
        ``(node*F + s + 1) * child_coverage * leaf_entries``; MAX when that
        child starts beyond the data.
        """
        child_coverage = self.level_coverage[level + 1]
        first_position = (
            (nodes * self.fanout + slots + 1) * child_coverage * self.leaf_entries
        )
        n = len(self.column)
        exists = first_position < n
        safe = np.where(exists, first_position, 0)
        keys = self.column.key_at(safe)
        return np.where(exists, keys, _MAX_KEY)

    def _leaf_keys(self, leaves: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Entry keys inside leaves; MAX past the end of the data."""
        positions = leaves * self.leaf_entries + slots
        n = len(self.column)
        exists = positions < n
        safe = np.where(exists, positions, 0)
        keys = self.column.key_at(safe)
        return np.where(exists, keys, _MAX_KEY)

    # ------------------------------------------------------------------
    # Traversal.
    # ------------------------------------------------------------------

    def _search_internal(
        self,
        level: int,
        nodes: np.ndarray,
        keys: np.ndarray,
        recorder: Optional[TraceRecorder],
    ) -> np.ndarray:
        """Child slot chosen in each internal node: upper_bound(separators)."""
        count = len(keys)
        num_separators = self.fanout - 1
        slot_lo = np.zeros(count, dtype=np.int64)
        slot_hi = np.full(count, num_separators, dtype=np.int64)
        base = self._node_address(level, nodes) if recorder is not None else None
        active = slot_lo < slot_hi
        while active.any():
            mid = (slot_lo + slot_hi) >> 1
            if recorder is not None:
                recorder.record(base + mid * KEY_BYTES, active=active)
            separators = self._separator_keys(
                level, nodes, np.where(active, mid, 0)
            )
            go_right = active & (separators <= keys)
            slot_lo = np.where(go_right, mid + 1, slot_lo)
            slot_hi = np.where(active & ~go_right, mid, slot_hi)
            active = slot_lo < slot_hi
        return slot_lo  # number of separators <= key == child index

    def _search_leaf(
        self,
        leaves: np.ndarray,
        keys: np.ndarray,
        recorder: Optional[TraceRecorder],
    ) -> np.ndarray:
        """Lower-bound position of each key inside its leaf; -1 if absent."""
        count = len(keys)
        slot_lo = np.zeros(count, dtype=np.int64)
        slot_hi = np.full(count, self.leaf_entries, dtype=np.int64)
        if recorder is not None:
            base = self._node_address(len(self.level_sizes) - 1, leaves)
        active = slot_lo < slot_hi
        entry_bytes = KEY_BYTES + self.leaf_payload_bytes
        while active.any():
            mid = (slot_lo + slot_hi) >> 1
            if recorder is not None:
                recorder.record(base + mid * entry_bytes, active=active)
            entry_keys = self._leaf_keys(leaves, np.where(active, mid, 0))
            go_right = active & (entry_keys < keys)
            slot_lo = np.where(go_right, mid + 1, slot_lo)
            slot_hi = np.where(active & ~go_right, mid, slot_hi)
            active = slot_lo < slot_hi
        in_leaf = slot_lo < self.leaf_entries
        if recorder is not None:
            recorder.record(
                base + np.where(in_leaf, slot_lo, 0) * entry_bytes,
                active=in_leaf,
            )
        found_keys = self._leaf_keys(leaves, np.where(in_leaf, slot_lo, 0))
        positions = leaves * self.leaf_entries + slot_lo
        # A hit must land on a *data* slot: padding slots past the end of
        # the column hold the MAX sentinel, and a probe key of MAX would
        # otherwise "match" the padding and return an out-of-bounds
        # position (found by the differential suite).
        found = (
            in_leaf & (positions < len(self.column)) & (found_keys == keys)
        )
        return np.where(found, positions, np.int64(-1))

    def _traverse(
        self, keys: np.ndarray, recorder: Optional[TraceRecorder]
    ) -> np.ndarray:
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        if obs.enabled():
            obs.add(
                "index.node_visits",
                float(len(keys) * len(self.level_sizes)),
                index=self.name,
            )
        nodes = np.zeros(len(keys), dtype=np.int64)
        for level in range(len(self.level_sizes) - 1):  # repro: noqa[PERF001] -- O(height) per-level descent over whole key arrays
            child = self._search_internal(level, nodes, keys, recorder)
            nodes = nodes * self.fanout + child
            # Dense packing can address children past the level's end for
            # the right-most path; clamp to the last node of the next level.
            nodes = np.minimum(nodes, self.level_sizes[level + 1] - 1)
        return self._search_leaf(nodes, keys, recorder)

    def _lower_bound(self, keys: np.ndarray) -> np.ndarray:
        """Lower bound via the same descent ``_traverse`` runs.

        Internal levels are unchanged (upper bound on separators picks
        the leaf whose key range covers the probe); the leaf search
        keeps its lower-bound bisection but returns the *global
        insertion position* ``leaf * entries + slot`` instead of
        equality-checking it.  Dense leaf packing makes that position
        exact for absent keys too: a probe past a full leaf's last key
        lands on slot ``leaf_entries``, i.e. the start of the next leaf.
        """
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        nodes = np.zeros(len(keys), dtype=np.int64)
        for level in range(len(self.level_sizes) - 1):  # repro: noqa[PERF001] -- O(height) per-level descent over whole key arrays
            child = self._search_internal(level, nodes, keys, None)
            nodes = np.minimum(
                nodes * self.fanout + child, self.level_sizes[level + 1] - 1
            )
        count = len(keys)
        slot_lo = np.zeros(count, dtype=np.int64)
        slot_hi = np.full(count, self.leaf_entries, dtype=np.int64)
        active = slot_lo < slot_hi
        while active.any():
            mid = (slot_lo + slot_hi) >> 1
            entry_keys = self._leaf_keys(nodes, np.where(active, mid, 0))
            go_right = active & (entry_keys < keys)
            slot_lo = np.where(go_right, mid + 1, slot_lo)
            slot_hi = np.where(active & ~go_right, mid, slot_hi)
            active = slot_lo < slot_hi
        return np.minimum(
            nodes * self.leaf_entries + slot_lo, len(self.column)
        )

    def _batch_kernel_args(self):
        """Scalar-kernel packing: geometry as plain int64 arrays."""
        if not isinstance(self.column, MaterializedColumn):
            return None
        return (
            "btree_batch",
            (
                self.column.keys,
                np.asarray(self.level_sizes, dtype=np.int64),
                np.asarray(self.level_coverage, dtype=np.int64),
                self.fanout,
                self.leaf_entries,
            ),
        )

    def _range_kernel_args(self):
        if not isinstance(self.column, MaterializedColumn):
            return None
        return (
            "btree_range_batch",
            (
                self.column.keys,
                np.asarray(self.level_sizes, dtype=np.int64),
                np.asarray(self.level_coverage, dtype=np.int64),
                self.fanout,
                self.leaf_entries,
            ),
        )

    # ------------------------------------------------------------------
    # Updates (materialized columns only).
    # ------------------------------------------------------------------

    def insert_keys(self, new_keys: np.ndarray) -> "BPlusTreeIndex":
        """Insert keys, returning a new index over the merged column.

        The implicit representation makes inserts a merge-and-rebuild:
        adequate for validating update semantics at laptop scale (the
        shape of bulk-loaded B+trees after batch inserts), not a
        node-splitting engine.  Only materialized columns support it.
        """
        if not isinstance(self.column, MaterializedColumn):
            raise SimulationError(
                "inserts require a materialized column; virtual columns are "
                "immutable by construction"
            )
        new_keys = np.asarray(new_keys, dtype=KEY_DTYPE)
        merged = np.union1d(self.column.keys, new_keys)
        if len(merged) != len(self.column) + len(np.unique(new_keys)):
            raise ConfigurationError(
                "duplicate keys are not allowed: R holds unique keys "
                "(paper Section 3.2)"
            )
        relation = Relation(
            name=self.relation.name, column=MaterializedColumn(merged)
        )
        return BPlusTreeIndex(
            relation,
            node_bytes=self.node_bytes,
            leaf_payload_bytes=self.leaf_payload_bytes,
        )

    # ------------------------------------------------------------------
    # Analytic locality.
    # ------------------------------------------------------------------

    def expected_sweep_pages(
        self,
        window_lookups: float,
        page_bytes: int,
        l2_bytes: int,
        cacheline_bytes: int,
    ) -> float:
        total = 0.0
        cumulative = 0
        for level, size in enumerate(self.level_sizes):  # repro: noqa[PERF001] -- O(height) analytic locality sum, not per-key
            level_bytes = size * self.node_bytes
            if cumulative + level_bytes <= l2_bytes:
                cumulative += level_bytes
                continue  # resident in L2; never reaches the TLB
            cumulative += level_bytes
            total += level_sweep_pages(
                window_lookups=window_lookups,
                span_bytes=level_bytes,
                page_bytes=page_bytes,
            )
        return total
