"""Crash-safe file writes shared by every durable artifact.

A plain ``open(path, "w")`` truncates first and writes second; a crash
between the two leaves a torn file that downstream readers (the CI
drift gate diffing ``metrics.json``, figure-export consumers) see as a
parse error indistinguishable from a bad run.  Everything durable goes
through :func:`atomic_write_text` instead: write to a temp file in the
*same directory* (same filesystem, so the final rename cannot turn
into a copy), flush and fsync, then ``os.replace`` -- which POSIX and
Windows both guarantee to be atomic.  Readers observe either the old
content or the new, never a prefix.

Append-only logs (the resilience layer's checkpoint JSONL) do not use
this helper on purpose: appends never truncate, and each record carries
its own checksum so a torn tail line is detected and recomputed.

``repro lint`` enforces the contract statically (rule ``RES001``).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    """Replace ``path`` with ``text`` all-or-nothing; returns ``path``.

    Parent directories are created as needed.  The temp file is cleaned
    up on any failure, so an aborted write leaves no debris next to the
    target.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(
    path: str,
    payload: object,
    indent: int = 2,
    sort_keys: bool = True,
    default: Optional[object] = None,
) -> str:
    """JSON-serialize ``payload`` and atomically write it to ``path``.

    ``sort_keys`` defaults on because every committed artifact in this
    repository (manifests, baselines, bench reports) must be
    byte-stable across runs for diff-based gates to work.
    """
    text = json.dumps(
        payload, indent=indent, sort_keys=sort_keys, default=default  # type: ignore[arg-type]
    )
    return atomic_write_text(path, text + "\n")
