"""Global simulation configuration.

The paper runs every experiment over the full probe relation S (2^26
tuples).  Replaying 2^26 index traversals at event granularity in Python is
infeasible, so the simulator replays a seeded *sample* of lookups and scales
the resulting counters to |S| (see DESIGN.md Section 5).  This module holds
the sampling knobs plus the default workload constants from Section 3.2 of
the paper, so experiments and tests agree on one source of truth.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from .errors import ConfigurationError
from .units import GIB, MIB


#: Default number of tuples in the probe relation S (paper Section 3.2:
#: "we keep S fixed at 2^26 tuples (512 MiB)").
DEFAULT_S_TUPLES = 2**26

#: Default scaling range of the build relation R, in tuples (paper: "R
#: ranges between 2^26 and 2^33.9 tuples (0.5-120 GiB)").
DEFAULT_R_MIN_TUPLES = 2**26
DEFAULT_R_MAX_TUPLES = int(2**33.9)

#: Default B+tree node size (paper: "The B+tree is configured with 4 KiB
#: nodes").
DEFAULT_BTREE_NODE_BYTES = 4096

#: Default Harmonia node width in keys (paper: "Harmonia with 32 keys per
#: node").
DEFAULT_HARMONIA_NODE_KEYS = 32

#: Default hash-join configuration (paper: "we configure it with a 50% load
#: factor and a block size of 512 keys").
DEFAULT_HASH_LOAD_FACTOR = 0.5
DEFAULT_HASH_BLOCK_KEYS = 512

#: Default window size for windowed partitioning (paper Sections 5.2.2 and
#: 5.2.3 use 32 MiB windows).
DEFAULT_WINDOW_BYTES = 32 * MIB

#: Default radix-partition fan-out (paper Section 4.3.1: "We set it to 2048
#: partitions, ignoring the 4 least significant bits of the key").
DEFAULT_NUM_PARTITIONS = 2048
DEFAULT_IGNORED_LSB = 4

#: Default huge-page size (paper: "The machine is set up to use 1 GiB huge
#: pages").
DEFAULT_HUGE_PAGE_BYTES = 1 * GIB

#: Environment flag requesting the optional numba JIT backend for the
#: fused batch probe kernels (see :mod:`repro.indexes.jit`).  The flag
#: only *requests* compilation: when numba is not importable the kernels
#: silently fall back to the vectorized numpy path, which is
#: bit-identical by construction (tests/indexes/test_probe_batch.py).
JIT_ENV = "REPRO_JIT"

_FALSY = frozenset({"", "0", "false", "no", "off"})


def jit_requested() -> bool:
    """Whether ``REPRO_JIT`` asks for the compiled batch kernels."""
    return os.environ.get(JIT_ENV, "").strip().lower() not in _FALSY


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs controlling simulation fidelity vs. runtime.

    Attributes:
        probe_sample: number of probe lookups replayed at event granularity.
            Counters are scaled by ``s_tuples / probe_sample``.  Must be a
            positive multiple of 32 (one warp) so SIMT accounting stays
            aligned.
        interleave_width: number of concurrently resident GPU threads whose
            memory accesses interleave in the TLB/cache simulators.  The
            V100 holds up to 163,840 resident threads -- far more than its
            TLB has entries -- so by default the whole sample executes as a
            single wave (width >= any sample), which reproduces the
            inter-thread eviction (thrashing) of Section 4.1.
        seed: base RNG seed; every generator derives its own stream from it
            so runs are reproducible.
        exact_tlb: replay the TLB as an exact LRU (True) or use the analytic
            miss-rate approximation (False, ~100x faster, used by wide
            parameter sweeps).
        fast_replay: replay cache/TLB streams through the vectorized numpy
            models (:mod:`repro.hardware.fastlru`) instead of the per-line
            ``OrderedDict`` references.  Both produce identical counters
            (the fast engine is exact, see tests/hardware/test_fast_models);
            set False to debug against the reference implementations.
    """

    probe_sample: int = 2**14
    interleave_width: int = 2**20
    seed: int = 42
    exact_tlb: bool = True
    fast_replay: bool = True

    def __post_init__(self) -> None:
        if self.probe_sample <= 0 or self.probe_sample % 32 != 0:
            raise ConfigurationError(
                "probe_sample must be a positive multiple of 32, got "
                f"{self.probe_sample}"
            )
        if self.interleave_width <= 0:
            raise ConfigurationError(
                f"interleave_width must be positive, got {self.interleave_width}"
            )
        if self.seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {self.seed}")

    def with_sample(self, probe_sample: int) -> "SimulationConfig":
        """Return a copy with a different event-replay sample size."""
        return replace(self, probe_sample=probe_sample)

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Return a copy with a different base seed."""
        return replace(self, seed=seed)

    def with_fast_replay(self, fast_replay: bool) -> "SimulationConfig":
        """Return a copy toggling the vectorized replay engine."""
        return replace(self, fast_replay=fast_replay)

    def scale_factor(self, s_tuples: int) -> float:
        """Factor by which sampled counters are scaled to the full relation."""
        if s_tuples <= 0:
            raise ConfigurationError(f"s_tuples must be positive, got {s_tuples}")
        return max(1.0, s_tuples / self.probe_sample)


#: Library-wide default configuration.  Experiments copy and tweak it; they
#: never mutate it in place (the dataclass is frozen to enforce that).
DEFAULT_CONFIG = SimulationConfig()
