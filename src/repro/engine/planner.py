"""Cost-based access-path selection for out-of-core joins.

The paper's discussion (Section 6) is optimizer guidance: index joins win
below ~8% selectivity on NVLink; the RadixSpline is the default pick; the
hash join remains right for unselective probes; Harmonia is the choice
when updates are required.  :class:`QueryPlanner` operationalizes that: it
enumerates candidate access paths, prices each with the simulation layer
on the target machine, and returns a ranked plan.

Candidates per query:

* hash join (always available -- needs no index);
* windowed INLJ over each available index type (the paper's recommended
  configuration: 2048-way partitions, 32 MiB windows);
* optionally the naive and fully-partitioned INLJ variants, for
  explain-style comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Type

from ..config import DEFAULT_WINDOW_BYTES, SimulationConfig
from ..data.generator import WorkloadConfig
from ..errors import CapacityError, ConfigurationError
from ..hardware.spec import SystemSpec
from ..indexes import ALL_INDEX_TYPES
from ..join.base import QueryEnvironment
from ..join.hash_join import HashJoin
from ..join.inlj import IndexNestedLoopJoin
from ..join.partitioned import PartitionedINLJ
from ..join.window import WindowedINLJ
from ..partition.bits import choose_partition_bits
from ..partition.radix import RadixPartitioner
from ..perf.model import QueryCost

#: Planner-default event-simulation budget: small enough for interactive
#: planning, large enough for stable ordered-mode estimates.
PLANNER_SIM = SimulationConfig(probe_sample=2**12)


@dataclass
class AccessPath:
    """One candidate plan with its estimated cost.

    Attributes:
        name: human-readable plan label.
        cost: the simulation-layer estimate.
        index_name: the index used, or None for the hash join.
        supports_updates: whether this path tolerates build-side updates
            (Section 6: pick Harmonia "if the index must support inserts").
    """

    name: str
    cost: QueryCost
    index_name: Optional[str] = None
    supports_updates: bool = False

    @property
    def queries_per_second(self) -> float:
        return self.cost.queries_per_second


@dataclass
class PlanChoice:
    """The planner's decision: the winner plus the ranked alternatives."""

    chosen: AccessPath
    candidates: List[AccessPath] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def explain(self) -> str:
        """Optimizer-style EXPLAIN output."""
        lines = [f"chosen: {self.chosen.name} "
                 f"({self.chosen.queries_per_second:.2f} Q/s)"]
        for candidate in self.candidates:
            marker = "*" if candidate is self.chosen else " "
            lines.append(
                f"  {marker} {candidate.name:<40} "
                f"{candidate.queries_per_second:8.2f} Q/s"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


class QueryPlanner:
    """Prices access paths on a machine and picks the cheapest."""

    def __init__(
        self,
        spec: SystemSpec,
        sim: SimulationConfig = PLANNER_SIM,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        num_partitions: int = 2048,
        ignored_lsb: int = 4,
    ):
        if window_bytes <= 0:
            raise ConfigurationError(
                f"window_bytes must be positive, got {window_bytes}"
            )
        self.spec = spec
        self.sim = sim
        self.window_bytes = window_bytes
        self.num_partitions = num_partitions
        self.ignored_lsb = ignored_lsb

    # ------------------------------------------------------------------
    # Candidate construction.
    # ------------------------------------------------------------------

    def _partitioner(self, column) -> RadixPartitioner:
        return RadixPartitioner(
            choose_partition_bits(
                column, self.num_partitions, ignored_lsb=self.ignored_lsb
            )
        )

    def _hash_candidate(self, workload: WorkloadConfig) -> AccessPath:
        env = QueryEnvironment(self.spec, workload, sim=self.sim)
        cost = HashJoin(env.relation).estimate(env)
        return AccessPath(
            name="hash join (build on S, scan R)",
            cost=cost,
            supports_updates=True,  # rebuilt per query anyway
        )

    def _index_candidates(
        self,
        workload: WorkloadConfig,
        index_cls: Type,
        include_variants: bool,
        notes: List[str],
    ) -> List[AccessPath]:
        candidates: List[AccessPath] = []
        try:
            env = QueryEnvironment(
                self.spec, workload, index_cls=index_cls, sim=self.sim
            )
        except CapacityError as error:
            notes.append(f"{index_cls.name}: skipped ({error})")
            return candidates
        partitioner = self._partitioner(env.column)
        windowed = WindowedINLJ(
            env.index, partitioner, window_bytes=self.window_bytes
        )
        candidates.append(
            AccessPath(
                name=f"windowed INLJ over {index_cls.name}",
                cost=windowed.estimate(env),
                index_name=index_cls.name,
                supports_updates=index_cls.supports_updates,
            )
        )
        if include_variants:
            env2 = QueryEnvironment(
                self.spec, workload, index_cls=index_cls, sim=self.sim
            )
            naive = IndexNestedLoopJoin(env2.index)
            candidates.append(
                AccessPath(
                    name=f"naive INLJ over {index_cls.name}",
                    cost=naive.estimate(env2),
                    index_name=index_cls.name,
                    supports_updates=index_cls.supports_updates,
                )
            )
            env3 = QueryEnvironment(
                self.spec, workload, index_cls=index_cls, sim=self.sim
            )
            partitioned = PartitionedINLJ(
                env3.index, self._partitioner(env3.column)
            )
            candidates.append(
                AccessPath(
                    name=f"partitioned INLJ over {index_cls.name} "
                    "(materializing)",
                    cost=partitioned.estimate(env3),
                    index_name=index_cls.name,
                    supports_updates=index_cls.supports_updates,
                )
            )
        return candidates

    # ------------------------------------------------------------------
    # Planning.
    # ------------------------------------------------------------------

    def plan(
        self,
        workload: WorkloadConfig,
        index_types: Sequence[Type] = ALL_INDEX_TYPES,
        require_updates: bool = False,
        include_variants: bool = False,
    ) -> PlanChoice:
        """Pick the cheapest access path for ``workload``.

        Args:
            workload: the join's shape (R size, S size, skew, match rate).
            index_types: indexes the DBMS could build/maintain.
            require_updates: restrict index paths to update-capable
                structures (Section 6: Harmonia or the B+tree).
            include_variants: also price naive/materializing INLJ
                variants, for EXPLAIN-style output.
        """
        notes: List[str] = []
        candidates = [self._hash_candidate(workload)]
        for index_cls in index_types:
            if require_updates and not index_cls.supports_updates:
                notes.append(
                    f"{index_cls.name}: excluded (updates required, static "
                    "index)"
                )
                continue
            candidates.extend(
                self._index_candidates(
                    workload, index_cls, include_variants, notes
                )
            )
        candidates.sort(key=lambda path: path.queries_per_second, reverse=True)
        chosen = candidates[0]
        notes.append(
            f"join selectivity {workload.join_selectivity * 100:.1f}% "
            f"(paper threshold: INLJ wins below ~8% on NVLink 2.0)"
        )
        return PlanChoice(chosen=chosen, candidates=candidates, notes=notes)
