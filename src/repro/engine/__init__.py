"""Query-engine layer: streaming operators and access-path planning.

The paper argues that with a fast interconnect "the GPU can select an
index scan instead of a full table scan" (Section 6) -- a *plan choice*.
This package supplies the surrounding machinery a DBMS would use:

* :mod:`repro.engine.pipeline` -- pull-based streaming operators over
  tuple batches (scan, filter, tumbling window, radix partition, index
  probe, materialize), mirroring how the windowed INLJ embeds into a
  query plan without materializing its inputs;
* :mod:`repro.engine.planner` -- a cost-based access-path planner that
  estimates every candidate (hash join, naive/partitioned/windowed INLJ
  over every available index) with the simulation layer and picks the
  cheapest, reproducing the paper's selectivity-threshold guidance.
"""

from .pipeline import (
    FilterOperator,
    IndexProbeOperator,
    MaterializeOperator,
    Operator,
    PartitionOperator,
    Pipeline,
    ScanOperator,
    TupleBatch,
    WindowOperator,
)
from .planner import AccessPath, PlanChoice, QueryPlanner

__all__ = [
    "FilterOperator",
    "IndexProbeOperator",
    "MaterializeOperator",
    "Operator",
    "PartitionOperator",
    "Pipeline",
    "ScanOperator",
    "TupleBatch",
    "WindowOperator",
    "AccessPath",
    "PlanChoice",
    "QueryPlanner",
]
