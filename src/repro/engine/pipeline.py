"""Pull-based streaming operators over tuple batches.

The paper's windowed partitioning "restores the pipeline" (Section 5):
probe tuples stream through window -> partition -> INLJ without either
input being materialized.  This module makes that pipeline explicit as
composable operators, so examples and tests can assemble exactly the
dataflow of the paper's Fig. 1 right-hand side -- and verify that a
pipelined plan computes the same join as a monolithic one.

Operators exchange :class:`TupleBatch` objects (keys plus their original
stream indices) and follow the classic open/next iterator contract,
implemented as Python generators.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional

import numpy as np

from .. import obs
from ..data.column import KEY_DTYPE
from ..errors import ConfigurationError, WorkloadError
from ..indexes.base import Index
from ..join.base import JoinResult
from ..partition.radix import RadixPartitioner
from ..resilience import faults
from ..units import KEY_BYTES


@dataclass
class TupleBatch:
    """A batch of probe tuples flowing through the pipeline.

    Attributes:
        keys: probe keys.
        indices: each tuple's position in the original stream (the
            payload join results refer to).
        positions: match positions in the indexed relation; filled by the
            probe operator, -1 before that / for misses.
    """

    keys: np.ndarray
    indices: np.ndarray
    positions: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.indices):
            raise WorkloadError(
                "keys and indices must have equal length: "
                f"{len(self.keys)} != {len(self.indices)}"
            )
        if self.positions is not None and len(self.positions) != len(self.keys):
            raise WorkloadError("positions length mismatch")

    def __len__(self) -> int:
        return len(self.keys)


class Operator(abc.ABC):
    """One pipeline stage: transforms a stream of batches."""

    @abc.abstractmethod
    def process(self, upstream: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
        """Consume upstream batches, yield downstream batches."""


class ScanOperator(Operator):
    """Stream source: emits probe keys in fixed-size batches.

    Models the outer scan that "ends the input stream" (Section 5.1).
    As a source it ignores its (empty) upstream.
    """

    def __init__(self, keys: np.ndarray, batch_tuples: int = 2**16):
        if batch_tuples <= 0:
            raise ConfigurationError(
                f"batch size must be positive, got {batch_tuples}"
            )
        self.keys = np.asarray(keys, dtype=KEY_DTYPE)
        self.batch_tuples = batch_tuples

    def process(self, upstream: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
        for start in range(0, len(self.keys), self.batch_tuples):
            stop = min(start + self.batch_tuples, len(self.keys))
            yield TupleBatch(
                keys=self.keys[start:stop],
                indices=np.arange(start, stop, dtype=np.int64),
            )


class FilterOperator(Operator):
    """Row filter on probe keys (a WHERE predicate ahead of the join)."""

    def __init__(self, predicate: Callable[[np.ndarray], np.ndarray]):
        self.predicate = predicate

    def process(self, upstream: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
        for batch in upstream:
            mask = np.asarray(self.predicate(batch.keys), dtype=bool)
            if mask.shape != batch.keys.shape:
                raise WorkloadError(
                    "predicate must return one boolean per key"
                )
            if mask.any():
                yield TupleBatch(
                    keys=batch.keys[mask], indices=batch.indices[mask]
                )


class WindowOperator(Operator):
    """Tumbling windows: regroup the stream into fixed-size batches.

    "We divide the stream on-the-fly into disjoint, fixed-size batches,
    i.e., tumbling windows.  Closing the window occurs either when the
    window reaches its capacity, or no more tuples are available"
    (Section 5.1).
    """

    def __init__(self, window_bytes: int):
        if window_bytes < KEY_BYTES:
            raise ConfigurationError(
                f"window must hold at least one tuple, got {window_bytes}"
            )
        self.window_tuples = max(1, window_bytes // KEY_BYTES)

    def process(self, upstream: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
        pending_keys: List[np.ndarray] = []
        pending_indices: List[np.ndarray] = []
        pending = 0
        for batch in upstream:
            keys, indices = batch.keys, batch.indices
            while pending + len(keys) >= self.window_tuples:
                take = self.window_tuples - pending
                if pending_keys:
                    pending_keys.append(keys[:take])
                    pending_indices.append(indices[:take])
                    yield TupleBatch(
                        keys=np.concatenate(pending_keys),
                        indices=np.concatenate(pending_indices),
                    )
                    pending_keys, pending_indices, pending = [], [], 0
                else:
                    # Window fills from one contiguous slice: no copy.
                    yield TupleBatch(keys=keys[:take], indices=indices[:take])
                keys, indices = keys[take:], indices[take:]
            if len(keys):
                pending_keys.append(keys)
                pending_indices.append(indices)
                pending += len(keys)
        if len(pending_keys) == 1:
            yield TupleBatch(keys=pending_keys[0], indices=pending_indices[0])
        elif pending:
            yield TupleBatch(
                keys=np.concatenate(pending_keys),
                indices=np.concatenate(pending_indices),
            )


class PartitionOperator(Operator):
    """Radix-partition each batch in place (within-window partitioning)."""

    def __init__(self, partitioner: RadixPartitioner):
        self.partitioner = partitioner

    def process(self, upstream: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
        for batch in upstream:
            output = self.partitioner.partition(
                batch.keys, source_indices=batch.indices
            )
            yield TupleBatch(keys=output.keys, indices=output.source_indices)


class IndexProbeOperator(Operator):
    """INLJ probe: look every batch key up in the index."""

    def __init__(self, index: Index):
        self.index = index

    def process(self, upstream: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
        for batch in upstream:
            positions = self.index.lookup(batch.keys)
            yield TupleBatch(
                keys=batch.keys, indices=batch.indices, positions=positions
            )


class MaterializeOperator(Operator):
    """Sink: collect matched pairs into a :class:`JoinResult`."""

    def __init__(self):
        self.result: Optional[JoinResult] = None

    def process(self, upstream: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
        probe_parts: List[np.ndarray] = []
        build_parts: List[np.ndarray] = []
        for batch in upstream:
            if batch.positions is None:
                raise WorkloadError(
                    "materialize needs probed batches; add an "
                    "IndexProbeOperator upstream"
                )
            matched = batch.positions >= 0
            probe_parts.append(batch.indices[matched])
            build_parts.append(batch.positions[matched])
            yield batch
        if probe_parts:
            self.result = JoinResult(
                probe_indices=np.concatenate(probe_parts),
                build_positions=np.concatenate(build_parts),
            )
        else:
            self.result = JoinResult(
                probe_indices=np.empty(0, dtype=np.int64),
                build_positions=np.empty(0, dtype=np.int64),
            )


def _counted(
    stream: Iterator[TupleBatch], operator_name: str
) -> Iterator[TupleBatch]:
    """Wrap one operator's output stream with per-operator obs counters.

    Only installed while tracing is on (:meth:`Pipeline.run`), so the
    traced-off pull loop runs the bare generators.
    """
    for batch in stream:
        if obs.enabled():
            obs.add("pipeline.batches", operator=operator_name)
            obs.add(
                "pipeline.tuples", float(len(batch)), operator=operator_name
            )
        yield batch


class Pipeline:
    """A chain of operators executed by pulling the sink."""

    def __init__(self, operators: Iterable[Operator]):
        self.operators = list(operators)
        if not self.operators:
            raise ConfigurationError("a pipeline needs at least one operator")

    def run(self) -> JoinResult:
        """Pull every batch through; returns the sink's join result.

        The sink is validated *before* any batch is pulled: a pipeline
        missing its :class:`MaterializeOperator` fails immediately
        instead of streaming the whole input and then raising.

        While tracing is on, every operator's output stream is wrapped
        with a counting generator (``pipeline.batches`` /
        ``pipeline.tuples`` per operator) and the pull loop runs inside
        a ``pipeline.run`` span.
        """
        sink = self.operators[-1]
        if not isinstance(sink, MaterializeOperator):
            raise ConfigurationError(
                "the last operator must be a MaterializeOperator"
            )
        traced = obs.enabled()
        stream: Iterator[TupleBatch] = iter(())
        for operator in self.operators:
            stream = operator.process(stream)
            if traced:
                stream = _counted(stream, type(operator).__name__)
        with obs.span("pipeline.run", stages=len(self.operators)):
            for __ in stream:
                # Fault-injection site: a ``*@batch`` plan can raise or
                # stall mid-stream, exercising pipeline-level recovery in
                # tests.
                faults.check("batch", type(sink).__name__)
        if sink.result is None:
            raise ConfigurationError(
                "the materialize sink produced no result; was the "
                "pipeline's stream exhausted before reaching it?"
            )
        return sink.result

    def explain(self) -> str:
        """One line per stage, scan to sink."""
        return " -> ".join(type(op).__name__ for op in self.operators)


def windowed_inlj_pipeline(
    probe_keys: np.ndarray,
    index: Index,
    partitioner: RadixPartitioner,
    window_bytes: int,
    batch_tuples: int = 2**14,
    predicate: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> Pipeline:
    """The paper's Section 5 dataflow as an explicit pipeline:

    scan -> [filter] -> tumbling window -> radix partition -> INLJ probe
    -> materialize.
    """
    operators: List[Operator] = [ScanOperator(probe_keys, batch_tuples)]
    if predicate is not None:
        operators.append(FilterOperator(predicate))
    operators.extend(
        [
            WindowOperator(window_bytes),
            PartitionOperator(partitioner),
            IndexProbeOperator(index),
            MaterializeOperator(),
        ]
    )
    return Pipeline(operators)
