"""Join operators: INLJ variants and the hash-join baseline.

* :class:`~repro.join.inlj.IndexNestedLoopJoin` -- the textbook INLJ of
  Section 3: one GPU thread per probe tuple, index lookup in the inner
  loop.
* :class:`~repro.join.partitioned.PartitionedINLJ` -- Section 4: radix
  partition *all* lookup keys (materializing them), then run the INLJ.
* :class:`~repro.join.window.WindowedINLJ` -- Section 5, the paper's
  contribution: partition the probe stream inside tumbling windows,
  pipelined, without materializing either input.
* :class:`~repro.join.hash_join.HashJoin` -- the WarpCore-style
  multi-value hash join baseline of Section 3.2.
* :class:`~repro.join.nonequi.BandJoin` /
  :class:`~repro.join.nonequi.KNNJoin` (and their windowed variants) --
  non-equi joins over the range primitive: band predicate
  ``|r.key - s.key| <= epsilon`` and 1-D k-nearest-neighbour probes.

Each operator has a functional ``join`` (exact results, laptop scale) and a
simulated ``estimate`` (cost-model throughput at paper scale).
"""

from .base import JoinResult, QueryEnvironment, expand_spans, reference_join
from .hash_join import HashJoin, MultiValueHashTable
from .inlj import IndexNestedLoopJoin
from .nonequi import BandJoin, KNNJoin, WindowedBandJoin, WindowedKNNJoin
from .partitioned import PartitionedINLJ
from .partitioned_hash import PartitionedHashJoin
from .window import WindowedINLJ

__all__ = [
    "JoinResult",
    "QueryEnvironment",
    "expand_spans",
    "reference_join",
    "HashJoin",
    "MultiValueHashTable",
    "IndexNestedLoopJoin",
    "PartitionedINLJ",
    "PartitionedHashJoin",
    "WindowedINLJ",
    "BandJoin",
    "KNNJoin",
    "WindowedBandJoin",
    "WindowedKNNJoin",
]
