"""Materializing partitioned INLJ (paper Section 4).

The whole probe-side key set is radix-partitioned in GPU memory before the
INLJ runs.  This removes the TLB cliff (Figs. 5-6) but materializes the
lookup keys -- the drawback the windowed approach of Section 5 eliminates.
"""

from __future__ import annotations

import numpy as np

from ..data.generator import make_ordered_probe_sample
from ..errors import WorkloadError
from ..hardware.memory import MemorySpace
from ..indexes.base import Index
from ..partition.radix import RadixPartitioner
from ..perf.model import QueryCost
from .base import JoinResult, QueryEnvironment

#: GPU-resident tuple during partitioning: 8 B key + 8 B source index.
_PARTITION_TUPLE_BYTES = 16


class PartitionedINLJ:
    """Radix-partition all lookup keys, then run the INLJ."""

    name = "partitioned INLJ"

    def __init__(self, index: Index, partitioner: RadixPartitioner):
        self.index = index
        self.partitioner = partitioner

    # ------------------------------------------------------------------
    # Functional path.
    # ------------------------------------------------------------------

    def join(self, probe_keys: np.ndarray) -> JoinResult:
        """Exact join; lookups run in partition order."""
        probe_keys = np.asarray(probe_keys)
        if probe_keys.ndim != 1:
            raise WorkloadError(
                f"probe keys must be one-dimensional, got {probe_keys.ndim}"
            )
        output = self.partitioner.partition(probe_keys)
        positions = self.index.lookup(output.keys)
        matched = positions >= 0
        return JoinResult(
            probe_indices=output.source_indices[matched],
            build_positions=positions[matched],
        )

    # ------------------------------------------------------------------
    # Simulated path.
    # ------------------------------------------------------------------

    def estimate(self, env: QueryEnvironment) -> QueryCost:
        """Cost-model throughput with full key materialization.

        Stage 1 reads S and radix-partitions it in GPU memory (in/out
        buffers are charged to device capacity -- the materialization the
        paper objects to).  Stage 2 probes in partition order: the event
        simulator supplies cache behaviour from a density-preserving
        ordered sample, the TLB analytically (see repro.perf.analytic).
        """
        if env.index is not self.index:
            raise WorkloadError(
                "environment was built for a different index instance"
            )
        workload = env.workload
        s_tuples = workload.s_tuples
        # Materialized key buffers (ping/pong) live in GPU memory.
        env.machine.memory.allocate(
            2 * s_tuples * _PARTITION_TUPLE_BYTES,
            MemorySpace.DEVICE,
            label="partitioned key buffers",
        )
        partition_stage = env.machine.scan_counters(env.s_bytes)
        partition_stage.add(
            self.partitioner.partition_counters(
                s_tuples, tuple_bytes=_PARTITION_TUPLE_BYTES
            )
        )
        sample = make_ordered_probe_sample(
            env.column, workload, window_tuples=s_tuples,
            count=env.sim.probe_sample,
        )
        env.machine.reset_hierarchy()
        lookup = self.index.trace_lookups(sample.keys)
        raw = env.machine.simulate_lookups(lookup.trace, simulate_tlb=False)
        raw.simt_instructions = lookup.simt.warp_instructions
        raw.divergence_replays = lookup.simt.divergence_replays
        probe_stage = env.machine.scale_lookup_counters(
            raw, float(s_tuples), replay_factor=self.index.tlb_replay_factor
        )
        gpu = env.spec.gpu
        sweep_pages = self.index.expected_sweep_pages(
            window_lookups=float(s_tuples),
            page_bytes=gpu.tlb_entry_bytes,
            l2_bytes=gpu.l2_bytes,
            cacheline_bytes=gpu.cacheline_bytes,
        )
        probe_stage.add(
            env.machine.analytic_tlb_counters(
                sweep_pages, replay_factor=self.index.tlb_replay_factor
            )
        )
        probe_stage.add(env.machine.result_counters(env.result_bytes()))
        return env.cost_model.price_stages(
            [("partition", partition_stage), ("probe", probe_stage)]
        )
