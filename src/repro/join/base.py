"""Join plumbing: results, reference join, and the query environment.

:class:`QueryEnvironment` wires together everything a simulated query run
needs -- the machine model, the placed relations and index, the cost model,
and the sampling configuration -- mirroring the paper's methodology
(Section 3.2): the index already exists when the query runs, R and S and
all index structures live in CPU memory, results materialize into GPU
memory, and throughput covers the entire query run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Type

import numpy as np

from ..config import DEFAULT_CONFIG, SimulationConfig
from ..data.column import Column, KEY_DTYPE
from ..data.generator import WorkloadConfig, make_build_relation
from ..errors import WorkloadError
from ..gpu.executor import MachineModel
from ..hardware.memory import MemorySpace
from ..hardware.spec import SystemSpec
from ..indexes.domain import saturating_band
from ..perf.model import CalibrationConstants, CostModel, DEFAULT_CALIBRATION
from ..units import KEY_BYTES

#: Bytes per materialized join-result pair (probe index + build position).
RESULT_PAIR_BYTES = 16


@dataclass
class JoinResult:
    """Pairs produced by an equi-join of S against R.

    Attributes:
        probe_indices: index of the S tuple of each pair.
        build_positions: position of the matching R tuple.
    """

    probe_indices: np.ndarray
    build_positions: np.ndarray

    def __post_init__(self) -> None:
        if len(self.probe_indices) != len(self.build_positions):
            raise WorkloadError(
                "result arrays must have equal length: "
                f"{len(self.probe_indices)} != {len(self.build_positions)}"
            )

    def __len__(self) -> int:
        return len(self.probe_indices)

    def canonical(self) -> "JoinResult":
        """Pairs in canonical ``(probe index, build position)`` order.

        The one order every cross-algorithm comparison uses.  The
        secondary sort on build position makes the order well-defined
        for multi-match results too (band and KNN joins emit several
        pairs per probe); equi-joins over unique keys are the
        one-pair-per-probe special case.
        """
        order = np.lexsort((self.build_positions, self.probe_indices))
        return JoinResult(
            probe_indices=self.probe_indices[order],
            build_positions=self.build_positions[order],
        )

    def sorted_by_probe(self) -> "JoinResult":
        """Historical name for :meth:`canonical`."""
        return self.canonical()

    def equals(self, other: "JoinResult") -> bool:
        """Multiset equality regardless of pair order.

        Compares the canonical forms element-wise, so results with
        several matches per probe key (band/KNN joins) compare exactly;
        no single-match assumption is made.
        """
        mine = self.canonical()
        theirs = other.canonical()
        return bool(
            np.array_equal(mine.probe_indices, theirs.probe_indices)
            and np.array_equal(mine.build_positions, theirs.build_positions)
        )


def expand_spans(
    sources: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> tuple:
    """Flatten per-probe ``[start, end)`` spans into (probe, position) pairs.

    Fully vectorized: each source index repeats once per position in its
    span, positions increase within a span, and spans are emitted in
    source order -- so the output of sorted inputs is already canonical.
    Inverted spans (``end < start``) count as empty.
    """
    sources = np.asarray(sources, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    lengths = np.maximum(ends - starts, 0)
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    probe = np.repeat(sources, lengths)
    # Per-span arange via the cumsum-offset trick: a global arange minus
    # each element's span start index, plus the span's column offset.
    span_begins = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(lengths)[:-1])
    )
    within = np.arange(total, dtype=np.int64) - np.repeat(span_begins, lengths)
    return probe, np.repeat(starts, lengths) + within


def reference_join(
    column: Column, probe_keys: np.ndarray, epsilon: int = 0
) -> JoinResult:
    """Brute-force ground-truth join of probe keys against a column.

    With ``epsilon == 0`` this is the equi-join oracle; with a positive
    ``epsilon`` it is the band-join oracle, emitting every (s, r) pair
    with ``|s.key - r.key| <= epsilon`` (saturating at the uint64 domain
    edges).  Earlier revisions computed one ``rank_of`` per probe and so
    could not express multi-match results at all; the span formulation
    subsumes that behaviour exactly -- over unique keys an ``epsilon=0``
    span has width 1 for a member and 0 otherwise.
    """
    probe_keys = np.atleast_1d(np.asarray(probe_keys, dtype=KEY_DTYPE))
    lo, hi = saturating_band(probe_keys, epsilon)
    starts = column.bound_positions(lo, side="left")
    ends = column.bound_positions(hi, side="right")
    sources = np.arange(len(probe_keys), dtype=np.int64)
    probe, positions = expand_spans(sources, starts, ends)
    return JoinResult(probe_indices=probe, build_positions=positions)


class QueryEnvironment:
    """A machine with the workload's relations (and index) placed in it.

    Construction performs the paper's setup phase: R in CPU memory, S in
    CPU memory, the index built and placed in CPU memory.  Placement uses
    the simulated allocator, so over-capacity configurations raise
    :class:`~repro.errors.CapacityError` exactly where the paper's
    hardware ran out of memory.
    """

    def __init__(
        self,
        spec: SystemSpec,
        workload: WorkloadConfig,
        index_cls: Optional[Type] = None,
        sim: SimulationConfig = DEFAULT_CONFIG,
        calibration: CalibrationConstants = DEFAULT_CALIBRATION,
        index_kwargs: Optional[dict] = None,
    ):
        self.spec = spec
        self.workload = workload
        self.sim = sim
        self.machine = MachineModel(spec, sim)
        self.cost_model = CostModel(spec, calibration)
        self.relation = make_build_relation(workload)
        self.relation.place(self.machine.memory, MemorySpace.HOST)
        self.probe_allocation = self.machine.memory.allocate(
            workload.s_tuples * KEY_BYTES, MemorySpace.HOST, label="relation S"
        )
        self.index = None
        if index_cls is not None:
            kwargs = index_kwargs or {}
            self.index = index_cls(self.relation, **kwargs)
            self.index.place(self.machine.memory)

    @property
    def column(self) -> Column:
        return self.relation.column

    @property
    def s_bytes(self) -> int:
        return self.workload.s_tuples * KEY_BYTES

    @property
    def r_bytes(self) -> int:
        return self.relation.nbytes

    def result_bytes(self) -> float:
        """Expected join-result materialization volume."""
        matches = self.workload.s_tuples * self.workload.match_rate
        return matches * RESULT_PAIR_BYTES

    def scale(self) -> float:
        """Sample-to-full-relation counter scale factor."""
        return self.sim.scale_factor(self.workload.s_tuples)
