"""Join plumbing: results, reference join, and the query environment.

:class:`QueryEnvironment` wires together everything a simulated query run
needs -- the machine model, the placed relations and index, the cost model,
and the sampling configuration -- mirroring the paper's methodology
(Section 3.2): the index already exists when the query runs, R and S and
all index structures live in CPU memory, results materialize into GPU
memory, and throughput covers the entire query run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Type

import numpy as np

from ..config import DEFAULT_CONFIG, SimulationConfig
from ..data.column import Column
from ..data.generator import WorkloadConfig, make_build_relation
from ..errors import WorkloadError
from ..gpu.executor import MachineModel
from ..hardware.memory import MemorySpace
from ..hardware.spec import SystemSpec
from ..perf.model import CalibrationConstants, CostModel, DEFAULT_CALIBRATION
from ..units import KEY_BYTES

#: Bytes per materialized join-result pair (probe index + build position).
RESULT_PAIR_BYTES = 16


@dataclass
class JoinResult:
    """Pairs produced by an equi-join of S against R.

    Attributes:
        probe_indices: index of the S tuple of each pair.
        build_positions: position of the matching R tuple.
    """

    probe_indices: np.ndarray
    build_positions: np.ndarray

    def __post_init__(self) -> None:
        if len(self.probe_indices) != len(self.build_positions):
            raise WorkloadError(
                "result arrays must have equal length: "
                f"{len(self.probe_indices)} != {len(self.build_positions)}"
            )

    def __len__(self) -> int:
        return len(self.probe_indices)

    def sorted_by_probe(self) -> "JoinResult":
        """Canonical order for comparisons across join algorithms."""
        order = np.lexsort((self.build_positions, self.probe_indices))
        return JoinResult(
            probe_indices=self.probe_indices[order],
            build_positions=self.build_positions[order],
        )

    def equals(self, other: "JoinResult") -> bool:
        """Set equality regardless of pair order."""
        mine = self.sorted_by_probe()
        theirs = other.sorted_by_probe()
        return bool(
            np.array_equal(mine.probe_indices, theirs.probe_indices)
            and np.array_equal(mine.build_positions, theirs.build_positions)
        )


def reference_join(column: Column, probe_keys: np.ndarray) -> JoinResult:
    """Ground-truth join of probe keys against a unique-key column.

    R holds unique keys (Section 3.2), so each probe matches at most one
    position; the reference is a direct rank computation.
    """
    positions = column.rank_of(np.asarray(probe_keys))
    matched = positions >= 0
    return JoinResult(
        probe_indices=np.nonzero(matched)[0].astype(np.int64),
        build_positions=positions[matched],
    )


class QueryEnvironment:
    """A machine with the workload's relations (and index) placed in it.

    Construction performs the paper's setup phase: R in CPU memory, S in
    CPU memory, the index built and placed in CPU memory.  Placement uses
    the simulated allocator, so over-capacity configurations raise
    :class:`~repro.errors.CapacityError` exactly where the paper's
    hardware ran out of memory.
    """

    def __init__(
        self,
        spec: SystemSpec,
        workload: WorkloadConfig,
        index_cls: Optional[Type] = None,
        sim: SimulationConfig = DEFAULT_CONFIG,
        calibration: CalibrationConstants = DEFAULT_CALIBRATION,
        index_kwargs: Optional[dict] = None,
    ):
        self.spec = spec
        self.workload = workload
        self.sim = sim
        self.machine = MachineModel(spec, sim)
        self.cost_model = CostModel(spec, calibration)
        self.relation = make_build_relation(workload)
        self.relation.place(self.machine.memory, MemorySpace.HOST)
        self.probe_allocation = self.machine.memory.allocate(
            workload.s_tuples * KEY_BYTES, MemorySpace.HOST, label="relation S"
        )
        self.index = None
        if index_cls is not None:
            kwargs = index_kwargs or {}
            self.index = index_cls(self.relation, **kwargs)
            self.index.place(self.machine.memory)

    @property
    def column(self) -> Column:
        return self.relation.column

    @property
    def s_bytes(self) -> int:
        return self.workload.s_tuples * KEY_BYTES

    @property
    def r_bytes(self) -> int:
        return self.relation.nbytes

    def result_bytes(self) -> float:
        """Expected join-result materialization volume."""
        matches = self.workload.s_tuples * self.workload.match_rate
        return matches * RESULT_PAIR_BYTES

    def scale(self) -> float:
        """Sample-to-full-relation counter scale factor."""
        return self.sim.scale_factor(self.workload.s_tuples)
