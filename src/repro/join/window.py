"""Windowed-partitioning INLJ -- the paper's contribution (Section 5).

The probe stream is divided on the fly into disjoint, fixed-size batches
(*tumbling windows*).  When a window closes -- it reaches capacity or the
stream ends -- its tuples are radix-partitioned and handed to the INLJ,
restoring the pipeline while keeping the TLB hit rate of Section 4.

Two GPU optimizations from Section 5.1 are modelled:

* *concurrent kernel execution*: two CUDA streams overlap window ``i``'s
  probe with window ``i+1``'s partition (transfer-compute overlap);
* *window size tuning*: small windows lose overlap efficiency and amortize
  page sweeps over fewer tuples; large windows approach full
  materialization.  The tension produces Fig. 7's optimum.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

import numpy as np

from ..config import DEFAULT_WINDOW_BYTES
from ..data.generator import make_ordered_probe_sample
from ..errors import ConfigurationError, WorkloadError
from ..gpu.streams import (
    StageTiming,
    overlapped_pipeline_time,
    serial_pipeline_time,
)
from ..hardware.counters import PerfCounters
from ..hardware.memory import MemorySpace
from ..indexes.base import Index
from ..partition.radix import RadixPartitioner
from ..perf.model import QueryCost
from ..units import KEY_BYTES
from .base import JoinResult, QueryEnvironment

#: GPU-resident window tuple: 8 B key + 8 B source index.
_WINDOW_TUPLE_BYTES = 16


class WindowedINLJ:
    """INLJ with on-the-fly windowed partitioning of the probe stream."""

    name = "windowed INLJ"

    def __init__(
        self,
        index: Index,
        partitioner: RadixPartitioner,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        overlap: bool = True,
    ):
        if window_bytes < KEY_BYTES:
            raise ConfigurationError(
                f"window must hold at least one tuple, got {window_bytes} bytes"
            )
        self.index = index
        self.partitioner = partitioner
        self.window_bytes = window_bytes
        self.overlap = overlap

    @property
    def window_tuples(self) -> int:
        """Window capacity in probe tuples (8-byte keys, Section 3.2)."""
        return max(1, self.window_bytes // KEY_BYTES)

    # ------------------------------------------------------------------
    # Functional path.
    # ------------------------------------------------------------------

    def windows(self, probe_keys: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        """Tumbling windows over the probe stream: (start_index, keys).

        The final window closes early when "no more tuples are available
        on the probe-side of the join" (Section 5.1).
        """
        capacity = self.window_tuples
        for start in range(0, len(probe_keys), capacity):  # repro: noqa[PERF001] -- O(|S|/W) window driver, not a per-key loop
            yield start, probe_keys[start : start + capacity]

    def join(self, probe_keys: np.ndarray) -> JoinResult:
        """Exact join, window by window, lookups in partition order.

        Both result columns are written into buffers preallocated at
        ``len(probe_keys)``: each window's fused :meth:`probe_batch`
        lands directly at its stream offset, so the loop allocates
        nothing per window and there is no final concatenation.  Result
        rows keep the historical order -- partition order within each
        window, windows in stream order.
        """
        probe_keys = np.asarray(probe_keys)
        if probe_keys.ndim != 1:
            raise WorkloadError(
                f"probe keys must be one-dimensional, got {probe_keys.ndim}"
            )
        total = len(probe_keys)
        positions = np.empty(total, dtype=np.int64)
        sources = np.empty(total, dtype=np.int64)
        for start, window_keys in self.windows(probe_keys):  # repro: noqa[PERF001] -- O(|S|/W) window driver around the fused kernel
            output = self.partitioner.partition(window_keys)
            self.index.probe_batch(output.keys, positions, offset=start)
            sources[start : start + len(window_keys)] = (
                output.source_indices + start
            )
        matched = positions >= 0
        return JoinResult(
            probe_indices=sources[matched],
            build_positions=positions[matched],
        )

    # ------------------------------------------------------------------
    # Simulated path.
    # ------------------------------------------------------------------

    def _window_probe_counters(self, env: QueryEnvironment) -> PerfCounters:
        """Counters of one window's probe kernel (event sim + analytic TLB)."""
        window = min(self.window_tuples, env.workload.s_tuples)
        sample = make_ordered_probe_sample(
            env.column,
            env.workload,
            window_tuples=window,
            count=min(env.sim.probe_sample, window),
        )
        env.machine.reset_hierarchy()
        lookup = self.index.trace_lookups(sample.keys)
        raw = env.machine.simulate_lookups(lookup.trace, simulate_tlb=False)
        raw.simt_instructions = lookup.simt.warp_instructions
        raw.divergence_replays = lookup.simt.divergence_replays
        counters = env.machine.scale_lookup_counters(
            raw, float(window), replay_factor=self.index.tlb_replay_factor
        )
        gpu = env.spec.gpu
        sweep_pages = self.index.expected_sweep_pages(
            window_lookups=float(window),
            page_bytes=gpu.tlb_entry_bytes,
            l2_bytes=gpu.l2_bytes,
            cacheline_bytes=gpu.cacheline_bytes,
        )
        counters.add(
            env.machine.analytic_tlb_counters(
                sweep_pages, replay_factor=self.index.tlb_replay_factor
            )
        )
        window_fraction = window / env.workload.s_tuples
        counters.add(
            env.machine.result_counters(env.result_bytes() * window_fraction)
        )
        return counters

    def estimate(self, env: QueryEnvironment) -> QueryCost:
        """Cost-model throughput of the windowed INLJ.

        Prices one representative window's two stages, then schedules
        ``ceil(|S| / W)`` windows on one or two streams.  Neither input is
        materialized: device memory holds only the in-flight window
        buffers.
        """
        if env.index is not self.index:
            raise WorkloadError(
                "environment was built for a different index instance"
            )
        window = min(self.window_tuples, env.workload.s_tuples)
        num_windows = math.ceil(env.workload.s_tuples / window)
        # Two in-flight windows (double buffering across streams).
        env.machine.memory.allocate(
            2 * 2 * window * _WINDOW_TUPLE_BYTES,
            MemorySpace.DEVICE,
            label="window buffers",
        )
        partition_counters = env.machine.scan_counters(window * KEY_BYTES)
        partition_counters.add(
            self.partitioner.partition_counters(
                window, tuple_bytes=_WINDOW_TUPLE_BYTES
            )
        )
        probe_counters = self._window_probe_counters(env)
        cost_model = env.cost_model
        timing = StageTiming(
            partition=cost_model.probe_stage_time(partition_counters),
            probe=cost_model.probe_stage_time(probe_counters),
            launch_overhead=cost_model.constants.kernel_launch_seconds,
        )
        timings = [timing] * num_windows
        if self.overlap:
            seconds = overlapped_pipeline_time(timings)
        else:
            seconds = serial_pipeline_time(timings)
        totals = PerfCounters()
        per_window = PerfCounters()
        per_window.add(partition_counters)
        per_window.add(probe_counters)
        totals.add(per_window.scaled(num_windows))
        return QueryCost(
            seconds=seconds,
            breakdown={
                "window_partition": timing.partition,
                "window_probe": timing.probe,
                "num_windows": float(num_windows),
            },
            counters=totals,
        )
