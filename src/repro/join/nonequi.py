"""Non-equi joins over the range primitive: band join and 1-D KNN join.

Both operators are built on :meth:`Index.probe_range_batch` -- the
per-key [start, end) span over the sorted base column -- so every index
structure (B+tree, binary search, Harmonia, RadixSpline, FAST) supports
them without operator-specific traversal code:

* **band join**: emit every (s, r) pair with ``|s.key - r.key| <=
  epsilon``.  The probe's span is the column slice covering the closed
  interval ``[key - epsilon, key + epsilon]`` (saturating at the uint64
  domain edges); ``epsilon == 0`` degenerates to the equi-INLJ span.
* **1-D KNN join**: emit each probe's ``k`` nearest keys by absolute
  distance.  The span of the point probe gives the insertion position;
  a two-sided *walk-out* takes the nearer neighbour ``k`` times.  Ties
  at equal distance take the LEFT (smaller-key) candidate -- the
  documented, deterministic tie-break.

Each operator comes in a naive (stream-order) and a windowed-partitioned
variant.  The windowed variants reuse :class:`RadixPartitioner` and the
tumbling-window driver exactly as :class:`WindowedINLJ` does: range
lookups within a window arrive in partition order, so the two bound
traversals sweep index pages sequentially instead of thrashing the TLB.
The lo/hi bounds of one probe land within ``epsilon`` of each other and
hit the same pages, which is why windowing transfers to non-equi probes
at full strength (the analytic TLB model sweeps each page once per
window, not once per bound).
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

import numpy as np

from .. import obs
from ..config import DEFAULT_WINDOW_BYTES
from ..data.column import Column, KEY_DTYPE
from ..data.generator import make_ordered_probe_sample, make_probe_keys
from ..errors import ConfigurationError, WorkloadError
from ..gpu.streams import (
    StageTiming,
    overlapped_pipeline_time,
    serial_pipeline_time,
)
from ..hardware.counters import PerfCounters
from ..hardware.memory import MemorySpace
from ..indexes.base import Index
from ..indexes.domain import saturating_band
from ..partition.radix import RadixPartitioner
from ..perf.model import QueryCost
from ..units import KEY_BYTES
from .base import JoinResult, QueryEnvironment, RESULT_PAIR_BYTES, expand_spans

#: GPU-resident window tuple: 8 B key + 8 B source index.
_WINDOW_TUPLE_BYTES = 16


def expected_band_matches(column: Column, epsilon: int) -> float:
    """Expected matches per band probe under uniform key density.

    A band of width ``2 * epsilon`` over a column with average key gap
    ``g`` covers about ``2 * epsilon / g + 1`` keys, capped at the
    column size.  Used by the cost estimates to size the result
    materialization volume.
    """
    n = len(column)
    if n <= 1:
        return 1.0
    avg_gap = (column.max_key - column.min_key) / (n - 1)
    return min(float(n), 2.0 * float(epsilon) / max(avg_gap, 1.0) + 1.0)


def _knn_positions(
    column: Column, keys: np.ndarray, starts: np.ndarray, k: int
) -> np.ndarray:
    """The ``k`` nearest column positions of each probe key, by walk-out.

    ``starts`` are the probes' lower-bound insertion positions.  Two
    cursors walk outward -- ``left = starts - 1`` over keys below the
    probe, ``right = starts`` over keys at/above it -- and each of the
    ``k`` steps takes the side with the smaller absolute distance.

    Tie-break (pinned by tests): at equal distance the LEFT candidate
    (the smaller key) is taken.  An exact member key sits on the right
    cursor at distance 0 and is always taken first, since the left
    distance is at least 1 over a strictly increasing column.

    Returns an ``(len(keys), min(k, len(column)))`` position matrix in
    distance order (nearest first).
    """
    n = len(column)
    count = len(keys)
    k_eff = min(k, n)
    left = starts.astype(np.int64) - 1
    right = starts.astype(np.int64).copy()
    out = np.empty((count, k_eff), dtype=np.int64)
    far = np.uint64(np.iinfo(np.uint64).max)
    for step in range(k_eff):  # repro: noqa[PERF001] -- O(k) walk-out over whole key arrays, not per key
        can_left = left >= 0
        can_right = right < n
        left_keys = column.key_at(np.where(can_left, left, 0))
        right_keys = column.key_at(np.where(can_right, right, 0))
        # Distances are exact in uint64: left keys are strictly below the
        # probe and right keys at/above it, so neither difference wraps
        # on an active cursor; inactive lanes compute garbage under the
        # errstate and are masked to "infinitely far".
        with np.errstate(over="ignore"):
            d_left = np.where(can_left, keys - left_keys, far)
            d_right = np.where(can_right, right_keys - keys, far)
        take_left = can_left & (~can_right | (d_left <= d_right))
        out[:, step] = np.where(take_left, left, right)
        left = np.where(take_left, left - 1, left)
        right = np.where(take_left, right, right + 1)
    return out


def _require_1d(probe_keys: np.ndarray) -> np.ndarray:
    probe_keys = np.asarray(probe_keys)
    if probe_keys.ndim != 1:
        raise WorkloadError(
            f"probe keys must be one-dimensional, got {probe_keys.ndim}"
        )
    return probe_keys.astype(KEY_DTYPE)


class BandJoin:
    """Naive (stream-order) band join: ``|r.key - s.key| <= epsilon``."""

    name = "band join"
    variant = "naive"

    def __init__(self, index: Index, epsilon: int):
        if epsilon < 0:
            raise ConfigurationError(
                f"epsilon must be non-negative, got {epsilon}"
            )
        self.index = index
        self.epsilon = int(epsilon)

    # ------------------------------------------------------------------
    # Functional path.
    # ------------------------------------------------------------------

    def join(self, probe_keys: np.ndarray) -> JoinResult:
        """Exact band join via one fused :meth:`probe_range_batch`."""
        probe_keys = _require_1d(probe_keys)
        count = len(probe_keys)
        lo, hi = saturating_band(probe_keys, self.epsilon)
        starts = np.empty(count, dtype=np.int64)
        ends = np.empty(count, dtype=np.int64)
        self.index.probe_range_batch(lo, hi, starts, ends)
        sources = np.arange(count, dtype=np.int64)
        probe, positions = expand_spans(sources, starts, ends)
        if obs.enabled():
            obs.add(
                "join.band.probes",
                float(count),
                index=self.index.name,
                variant=self.variant,
            )
            obs.add(
                "join.band.pairs",
                float(len(probe)),
                index=self.index.name,
                variant=self.variant,
            )
        return JoinResult(probe_indices=probe, build_positions=positions)

    # ------------------------------------------------------------------
    # Simulated path.
    # ------------------------------------------------------------------

    def _result_bytes(self, env: QueryEnvironment) -> float:
        matches = env.workload.s_tuples * expected_band_matches(
            env.column, self.epsilon
        )
        return matches * RESULT_PAIR_BYTES

    def estimate(self, env: QueryEnvironment) -> QueryCost:
        """Cost-model throughput of the naive band join.

        Like the stream-order INLJ, but every probe runs *two* scattered
        traversals (the lo and hi bounds), so traversal and TLB counters
        scale by ``2 |S|`` -- random-order bounds thrash the TLB twice.
        """
        if env.index is not self.index:
            raise WorkloadError(
                "environment was built for a different index instance"
            )
        s_tuples = float(env.workload.s_tuples)
        env.machine.reset_hierarchy()
        sample = make_probe_keys(
            env.column, env.workload, count=env.sim.probe_sample
        )
        lookup = self.index.trace_lookups(sample.keys)
        raw = env.machine.simulate_lookups(
            lookup.trace, simulate_tlb=True, shuffle=True
        )
        raw.simt_instructions = lookup.simt.warp_instructions
        raw.divergence_replays = lookup.simt.divergence_replays
        counters = env.machine.scale_lookup_counters(
            raw, 2.0 * s_tuples, replay_factor=self.index.tlb_replay_factor
        )
        counters.add(env.machine.scan_counters(env.s_bytes))
        counters.add(env.machine.result_counters(self._result_bytes(env)))
        counters.validate()
        return env.cost_model.price_stages([("probe", counters)])


class KNNJoin(BandJoin):
    """Naive 1-D KNN join: each probe's ``k`` nearest keys."""

    name = "KNN join"
    variant = "naive"

    def __init__(self, index: Index, k: int):
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        super().__init__(index, epsilon=0)
        self.k = int(k)

    def join(self, probe_keys: np.ndarray) -> JoinResult:
        """Exact KNN join: point range probe, then a ``k``-step walk-out."""
        probe_keys = _require_1d(probe_keys)
        count = len(probe_keys)
        starts = np.empty(count, dtype=np.int64)
        ends = np.empty(count, dtype=np.int64)
        # A point probe's span start is the lower-bound insertion
        # position the walk-out starts from.
        self.index.probe_range_batch(probe_keys, probe_keys, starts, ends)
        positions = _knn_positions(
            self.index.column, probe_keys, starts, self.k
        )
        k_eff = positions.shape[1]
        probe = np.repeat(np.arange(count, dtype=np.int64), k_eff)
        if obs.enabled():
            obs.add(
                "join.knn.probes",
                float(count),
                index=self.index.name,
                variant=self.variant,
            )
            obs.add(
                "join.knn.pairs",
                float(count * k_eff),
                index=self.index.name,
                variant=self.variant,
            )
        return JoinResult(
            probe_indices=probe, build_positions=positions.reshape(-1)
        )

    def _result_bytes(self, env: QueryEnvironment) -> float:
        k_eff = min(self.k, len(env.column))
        return env.workload.s_tuples * k_eff * RESULT_PAIR_BYTES

    def estimate(self, env: QueryEnvironment) -> QueryCost:
        """Naive band-join cost plus the walk-out's neighbour reads."""
        cost = super().estimate(env)
        k_eff = min(self.k, len(env.column))
        walkout = env.machine.scan_counters(
            env.workload.s_tuples * k_eff * KEY_BYTES
        )
        counters = cost.counters
        counters.add(walkout)
        counters.validate()
        return env.cost_model.price_stages([("probe", counters)])


class _WindowedNonEqui:
    """Shared tumbling-window driver and cost pipeline (Section 5 model).

    Subclasses provide the per-window probe (:meth:`_window_probe`) and
    the expected result volume (:meth:`_result_bytes`); the window
    schedule, partition stage, and overlap model are exactly
    :class:`WindowedINLJ`'s.  Per-probe traversal counters scale by two
    bounds per probe, but the analytic TLB sweep does *not* double: both
    bounds of a partitioned probe land within ``epsilon`` of each other
    and walk the same index pages, so each page is still swept once per
    window.
    """

    def __init__(
        self,
        index: Index,
        partitioner: RadixPartitioner,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        overlap: bool = True,
    ):
        if window_bytes < KEY_BYTES:
            raise ConfigurationError(
                f"window must hold at least one tuple, got {window_bytes} bytes"
            )
        self.index = index
        self.partitioner = partitioner
        self.window_bytes = window_bytes
        self.overlap = overlap

    @property
    def window_tuples(self) -> int:
        """Window capacity in probe tuples (8-byte keys)."""
        return max(1, self.window_bytes // KEY_BYTES)

    def windows(
        self, probe_keys: np.ndarray
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Tumbling windows over the probe stream: (start_index, keys)."""
        capacity = self.window_tuples
        for start in range(0, len(probe_keys), capacity):  # repro: noqa[PERF001] -- O(|S|/W) window driver, not a per-key loop
            yield start, probe_keys[start : start + capacity]

    # -- functional ----------------------------------------------------

    def _window_probe(
        self,
        window_keys: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        offset: int,
    ) -> None:
        raise NotImplementedError

    def _finish(
        self,
        probe_keys_partitioned: np.ndarray,
        sources: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
    ) -> JoinResult:
        raise NotImplementedError

    def join(self, probe_keys: np.ndarray) -> JoinResult:
        """Exact join, window by window, range probes in partition order.

        All buffers are preallocated at ``len(probe_keys)``; each
        window's fused range probe lands at its stream offset, exactly
        like :meth:`WindowedINLJ.join`.  The partitioned key stream is
        kept aligned with the span buffers so the KNN walk-out can run
        over the whole stream after the loop.
        """
        probe_keys = _require_1d(probe_keys)
        total = len(probe_keys)
        starts = np.empty(total, dtype=np.int64)
        ends = np.empty(total, dtype=np.int64)
        sources = np.empty(total, dtype=np.int64)
        permuted = np.empty(total, dtype=KEY_DTYPE)
        for start, window_keys in self.windows(probe_keys):  # repro: noqa[PERF001] -- O(|S|/W) window driver around the fused kernel
            output = self.partitioner.partition(window_keys)
            self._window_probe(output.keys, starts, ends, start)
            stop = start + len(window_keys)
            sources[start:stop] = output.source_indices + start
            permuted[start:stop] = output.keys
        return self._finish(permuted, sources, starts, ends)

    # -- simulated -----------------------------------------------------

    #: Bound traversals per probe (lo and hi).
    _probe_scale = 2.0

    def _result_bytes(self, env: QueryEnvironment) -> float:
        raise NotImplementedError

    def _extra_window_counters(
        self, env: QueryEnvironment, window: int
    ) -> PerfCounters:
        """Operator-specific additions to one window's probe stage."""
        return PerfCounters()

    def _window_probe_counters(self, env: QueryEnvironment) -> PerfCounters:
        """Counters of one window's range-probe kernel.

        Ordered sample + event sim for traversal work (scaled by two
        bounds per probe), analytic TLB swept once per page per window
        -- the windowed advantage the sweep measures.
        """
        window = min(self.window_tuples, env.workload.s_tuples)
        sample = make_ordered_probe_sample(
            env.column,
            env.workload,
            window_tuples=window,
            count=min(env.sim.probe_sample, window),
        )
        env.machine.reset_hierarchy()
        lookup = self.index.trace_lookups(sample.keys)
        raw = env.machine.simulate_lookups(lookup.trace, simulate_tlb=False)
        raw.simt_instructions = lookup.simt.warp_instructions
        raw.divergence_replays = lookup.simt.divergence_replays
        counters = env.machine.scale_lookup_counters(
            raw,
            self._probe_scale * window,
            replay_factor=self.index.tlb_replay_factor,
        )
        gpu = env.spec.gpu
        sweep_pages = self.index.expected_sweep_pages(
            window_lookups=float(window),
            page_bytes=gpu.tlb_entry_bytes,
            l2_bytes=gpu.l2_bytes,
            cacheline_bytes=gpu.cacheline_bytes,
        )
        counters.add(
            env.machine.analytic_tlb_counters(
                sweep_pages, replay_factor=self.index.tlb_replay_factor
            )
        )
        window_fraction = window / env.workload.s_tuples
        counters.add(
            env.machine.result_counters(
                self._result_bytes(env) * window_fraction
            )
        )
        counters.add(self._extra_window_counters(env, window))
        return counters

    def estimate(self, env: QueryEnvironment) -> QueryCost:
        """Windowed pipeline cost: partition + range probe per window."""
        if env.index is not self.index:
            raise WorkloadError(
                "environment was built for a different index instance"
            )
        window = min(self.window_tuples, env.workload.s_tuples)
        num_windows = math.ceil(env.workload.s_tuples / window)
        # Two in-flight windows (double buffering across streams); range
        # probes carry two span buffers alongside key + source.
        env.machine.memory.allocate(
            2 * 2 * window * _WINDOW_TUPLE_BYTES,
            MemorySpace.DEVICE,
            label="window buffers",
        )
        partition_counters = env.machine.scan_counters(window * KEY_BYTES)
        partition_counters.add(
            self.partitioner.partition_counters(
                window, tuple_bytes=_WINDOW_TUPLE_BYTES
            )
        )
        probe_counters = self._window_probe_counters(env)
        cost_model = env.cost_model
        timing = StageTiming(
            partition=cost_model.probe_stage_time(partition_counters),
            probe=cost_model.probe_stage_time(probe_counters),
            launch_overhead=cost_model.constants.kernel_launch_seconds,
        )
        timings = [timing] * num_windows
        if self.overlap:
            seconds = overlapped_pipeline_time(timings)
        else:
            seconds = serial_pipeline_time(timings)
        totals = PerfCounters()
        per_window = PerfCounters()
        per_window.add(partition_counters)
        per_window.add(probe_counters)
        totals.add(per_window.scaled(num_windows))
        return QueryCost(
            seconds=seconds,
            breakdown={
                "window_partition": timing.partition,
                "window_probe": timing.probe,
                "num_windows": float(num_windows),
            },
            counters=totals,
        )


class WindowedBandJoin(_WindowedNonEqui):
    """Band join with windowed partitioning of the probe stream."""

    name = "windowed band join"
    variant = "windowed"

    def __init__(
        self,
        index: Index,
        partitioner: RadixPartitioner,
        epsilon: int,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        overlap: bool = True,
    ):
        if epsilon < 0:
            raise ConfigurationError(
                f"epsilon must be non-negative, got {epsilon}"
            )
        super().__init__(index, partitioner, window_bytes, overlap)
        self.epsilon = int(epsilon)

    def _window_probe(self, window_keys, starts, ends, offset):
        lo, hi = saturating_band(window_keys, self.epsilon)
        self.index.probe_range_batch(lo, hi, starts, ends, offset=offset)

    def _finish(self, permuted, sources, starts, ends):
        probe, positions = expand_spans(sources, starts, ends)
        if obs.enabled():
            obs.add(
                "join.band.probes",
                float(len(sources)),
                index=self.index.name,
                variant=self.variant,
            )
            obs.add(
                "join.band.pairs",
                float(len(probe)),
                index=self.index.name,
                variant=self.variant,
            )
        return JoinResult(probe_indices=probe, build_positions=positions)

    def _result_bytes(self, env: QueryEnvironment) -> float:
        matches = env.workload.s_tuples * expected_band_matches(
            env.column, self.epsilon
        )
        return matches * RESULT_PAIR_BYTES


class WindowedKNNJoin(_WindowedNonEqui):
    """1-D KNN join with windowed partitioning of the probe stream."""

    name = "windowed KNN join"
    variant = "windowed"

    def __init__(
        self,
        index: Index,
        partitioner: RadixPartitioner,
        k: int,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        overlap: bool = True,
    ):
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        super().__init__(index, partitioner, window_bytes, overlap)
        self.k = int(k)

    def _window_probe(self, window_keys, starts, ends, offset):
        self.index.probe_range_batch(
            window_keys, window_keys, starts, ends, offset=offset
        )

    def _finish(self, permuted, sources, starts, ends):
        positions = _knn_positions(
            self.index.column, permuted, starts, self.k
        )
        k_eff = positions.shape[1]
        probe = np.repeat(sources, k_eff)
        if obs.enabled():
            obs.add(
                "join.knn.probes",
                float(len(sources)),
                index=self.index.name,
                variant=self.variant,
            )
            obs.add(
                "join.knn.pairs",
                float(len(sources) * k_eff),
                index=self.index.name,
                variant=self.variant,
            )
        return JoinResult(
            probe_indices=probe, build_positions=positions.reshape(-1)
        )

    def _result_bytes(self, env: QueryEnvironment) -> float:
        k_eff = min(self.k, len(env.column))
        return env.workload.s_tuples * k_eff * RESULT_PAIR_BYTES

    def _extra_window_counters(
        self, env: QueryEnvironment, window: int
    ) -> PerfCounters:
        """The walk-out's neighbour reads for this window's probes."""
        k_eff = min(self.k, len(env.column))
        return env.machine.scan_counters(window * k_eff * KEY_BYTES)
