"""A radix-partitioned (Grace-style) hash join, for Section 2.3's argument.

The paper contrasts its windowed approach with classic partitioned joins:
"with some exceptions, partitioned joins are detrimental to overall query
performance [Bandle et al.].  On top, partitioning both inputs consumes
additional memory equal to the input size."  This operator implements that
alternative so the claim can be measured:

* both inputs are radix-partitioned on the join key;
* co-partitions are joined pairwise with a hash table per partition;
* the partitioned copy of R is materialized -- in GPU memory when it
  fits, otherwise back in CPU memory, which at out-of-core scale means
  reading *and* writing R across the interconnect before the join even
  starts.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..config import DEFAULT_HASH_BLOCK_KEYS, DEFAULT_HASH_LOAD_FACTOR
from ..data.column import KEY_DTYPE, MaterializedColumn
from ..data.relation import Relation
from ..errors import WorkloadError
from ..hardware.memory import MemorySpace
from ..partition.radix import RadixPartitioner
from ..perf.model import QueryCost
from .base import JoinResult, QueryEnvironment
from .hash_join import MultiValueHashTable

#: Partitioned tuples carry key + source index.
_TUPLE_BYTES = 16

#: Device-memory passes of the radix partitioner (histogram + scatter).
_PARTITION_PASSES = 2.0


class PartitionedHashJoin:
    """Radix-partition both inputs, then hash-join co-partitions."""

    name = "partitioned hash join"

    def __init__(
        self,
        relation: Relation,
        partitioner: RadixPartitioner,
        load_factor: float = DEFAULT_HASH_LOAD_FACTOR,
        block_keys: int = DEFAULT_HASH_BLOCK_KEYS,
    ):
        self.relation = relation
        self.partitioner = partitioner
        self.load_factor = load_factor
        self.block_keys = block_keys

    # ------------------------------------------------------------------
    # Functional path.
    # ------------------------------------------------------------------

    def join(self, probe_keys: np.ndarray) -> JoinResult:
        """Exact join via per-partition hash tables (materialized R)."""
        if not isinstance(self.relation.column, MaterializedColumn):
            raise WorkloadError(
                "the functional partitioned hash join materializes R and "
                "therefore needs a materialized column"
            )
        probe_keys = np.asarray(probe_keys, dtype=KEY_DTYPE)
        build = self.partitioner.partition(probe_keys)
        r_keys = self.relation.column.keys
        probe = self.partitioner.partition(r_keys)
        probe_parts: List[np.ndarray] = []
        build_parts: List[np.ndarray] = []
        for partition in range(build.num_partitions):  # repro: noqa[PERF001] -- O(#partitions) partition driver, not a per-key loop
            build_slice = build.partition_slice(partition)
            probe_slice = probe.partition_slice(partition)
            build_keys = build.keys[build_slice]
            if len(build_keys) == 0:
                continue
            table = MultiValueHashTable(
                expected_keys=len(build_keys),
                load_factor=self.load_factor,
                block_keys=self.block_keys,
            )
            table.insert(build_keys, build.source_indices[build_slice])
            local_probe, s_indices = table.lookup(probe.keys[probe_slice])
            if len(local_probe) == 0:
                continue
            r_positions = probe.source_indices[probe_slice][local_probe]
            probe_parts.append(s_indices)
            build_parts.append(r_positions)
        if probe_parts:
            return JoinResult(
                probe_indices=np.concatenate(probe_parts),
                build_positions=np.concatenate(build_parts),
            )
        return JoinResult(
            probe_indices=np.empty(0, dtype=np.int64),
            build_positions=np.empty(0, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Simulated path.
    # ------------------------------------------------------------------

    def estimate(self, env: QueryEnvironment) -> QueryCost:
        """Cost-model throughput of the partitioned hash join.

        Stage 1 partitions S (as the hash join builds on the smaller
        input).  Stage 2 partitions R: when the partitioned copy fits GPU
        memory it stays there; otherwise it is written back to CPU memory
        -- R crosses the interconnect twice before any joining happens,
        the "additional memory equal to the input size" cost made visible.
        Stage 3 joins co-partitions (same per-tuple work as the plain
        hash join, minus chain excesses, plus table re-initialization).
        """
        constants = env.cost_model.constants
        workload = env.workload
        s_tuples = float(workload.s_tuples)
        r_tuples = float(workload.r_tuples)
        machine = env.machine

        partition_s = machine.scan_counters(env.s_bytes)
        partition_s.add(
            self.partitioner.partition_counters(
                s_tuples, tuple_bytes=_TUPLE_BYTES, passes=_PARTITION_PASSES
            )
        )
        machine.memory.allocate(
            int(s_tuples) * _TUPLE_BYTES, MemorySpace.DEVICE,
            label="partitioned S",
        )

        r_copy_bytes = r_tuples * _TUPLE_BYTES
        partition_r = machine.scan_counters(env.r_bytes)
        fits_in_gpu = (
            machine.memory.available(MemorySpace.DEVICE) >= r_copy_bytes
        )
        if fits_in_gpu:
            machine.memory.allocate(
                int(r_copy_bytes), MemorySpace.DEVICE, label="partitioned R"
            )
            partition_r.add(
                self.partitioner.partition_counters(
                    r_tuples, tuple_bytes=_TUPLE_BYTES,
                    passes=_PARTITION_PASSES,
                )
            )
        else:
            machine.memory.allocate(
                int(r_copy_bytes), MemorySpace.HOST, label="partitioned R"
            )
            # The scatter writes the partitioned copy back to CPU memory,
            # and the second pass reads it in again: 2x extra R traffic
            # on the interconnect on top of the initial read.
            partition_r.add(machine.scan_counters(2.0 * r_copy_bytes))
            partition_r.add(
                self.partitioner.partition_counters(
                    r_tuples, tuple_bytes=_TUPLE_BYTES, passes=1.0
                )
            )

        join_stage = machine.scan_counters(
            0.0 if fits_in_gpu else env.r_bytes * 2  # re-read R as tuples
        )
        join_stage.add(
            machine.gpu_random_counters(
                s_tuples * constants.hash_build_accesses
                + r_tuples * constants.hash_probe_accesses,
                bytes_per_access=constants.gpu_sector_bytes,
            )
        )
        join_stage.add(machine.result_counters(env.result_bytes()))
        join_stage.lookups = s_tuples
        return env.cost_model.price_stages(
            [
                ("partition S", partition_s),
                ("partition R", partition_r),
                ("join", join_stage),
            ]
        )
