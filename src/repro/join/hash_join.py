"""The hash-join baseline: a WarpCore-style multi-value hash table.

The paper's baseline (Section 3.2) uses WarpCore's MultiValueHashTable
with a 50% load factor and 512-key blocks, keeps the table in GPU memory,
builds on the smaller relation (S) on the fly, and probes by scanning R
over the interconnect.

The functional table here is a linear-probing multi-value table with the
same structural behaviour: duplicate keys occupy consecutive chain slots,
so heavy skew produces the long probe chains that made the paper terminate
its Zipf-1.75 hash-join run after ten hours (Section 5.2.2).  The cost
model computes chain statistics analytically from the key distribution, so
paper-scale estimates do not require materializing 2^26 keys.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..config import DEFAULT_HASH_BLOCK_KEYS, DEFAULT_HASH_LOAD_FACTOR
from ..data.column import KEY_DTYPE, MaterializedColumn, _splitmix64
from ..data.relation import Relation
from ..data.zipf import zipf_sum_p2
from ..errors import CapacityError, ConfigurationError, WorkloadError
from ..hardware.memory import MemorySpace
from ..perf.model import QueryCost
from .base import JoinResult, QueryEnvironment

_EMPTY = np.uint64(np.iinfo(np.uint64).max)

#: Bytes per hash-table slot (8 B key + 8 B value).
_SLOT_BYTES = 16


class MultiValueHashTable:
    """Linear-probing multi-value hash table (functional path).

    Duplicate keys are stored in separate slots along the probe chain, as
    WarpCore's value blocks do at block granularity; lookups walk the
    chain until an empty slot, collecting every match.
    """

    def __init__(
        self,
        expected_keys: int,
        load_factor: float = DEFAULT_HASH_LOAD_FACTOR,
        block_keys: int = DEFAULT_HASH_BLOCK_KEYS,
    ):
        if expected_keys <= 0:
            raise ConfigurationError(
                f"expected_keys must be positive, got {expected_keys}"
            )
        if not 0.0 < load_factor < 1.0:
            raise ConfigurationError(
                f"load_factor must be in (0, 1), got {load_factor}"
            )
        if block_keys <= 0:
            raise ConfigurationError(
                f"block_keys must be positive, got {block_keys}"
            )
        capacity = 1
        while capacity < expected_keys / load_factor:
            capacity *= 2
        self.capacity = capacity
        self.load_factor = load_factor
        self.block_keys = block_keys
        self._keys = np.full(capacity, _EMPTY, dtype=KEY_DTYPE)
        self._values = np.zeros(capacity, dtype=np.int64)
        self.size = 0
        self.total_insert_probes = 0
        self.max_insert_probes = 0

    def _slots_of(self, keys: np.ndarray) -> np.ndarray:
        mixed = _splitmix64(np.asarray(keys, dtype=KEY_DTYPE))
        return (mixed & np.uint64(self.capacity - 1)).astype(np.int64)

    def insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert (key, value) pairs; duplicates allowed (multi-value)."""
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        values = np.asarray(values, dtype=np.int64)
        if len(keys) != len(values):
            raise WorkloadError(
                f"keys/values length mismatch: {len(keys)} != {len(values)}"
            )
        if np.any(keys == _EMPTY):
            raise WorkloadError("the maximum uint64 key is reserved as empty")
        if self.size + len(keys) > self.capacity:
            raise CapacityError(
                f"table of capacity {self.capacity} cannot hold "
                f"{self.size + len(keys)} entries"
            )
        table_keys = self._keys
        table_values = self._values
        mask = self.capacity - 1
        for slot0, key, value in zip(  # repro: noqa[PERF001] -- reference open-addressing build, correctness oracle at test scale
            self._slots_of(keys).tolist(), keys.tolist(), values.tolist()
        ):
            slot = slot0
            probes = 1
            while table_keys[slot] != _EMPTY:
                slot = (slot + 1) & mask
                probes += 1
            table_keys[slot] = key
            table_values[slot] = value
            self.total_insert_probes += probes
            self.max_insert_probes = max(self.max_insert_probes, probes)
        self.size += len(keys)

    def lookup(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """All matches of each key: (probe_index, value) pair arrays."""
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        table_keys = self._keys
        table_values = self._values
        mask = self.capacity - 1
        out_probe = []
        out_value = []
        for index, (slot0, key) in enumerate(  # repro: noqa[PERF001] -- reference open-addressing probe, correctness oracle at test scale
            zip(self._slots_of(keys).tolist(), keys.tolist())
        ):
            slot = slot0
            while table_keys[slot] != _EMPTY:
                if table_keys[slot] == key:
                    out_probe.append(index)
                    out_value.append(int(table_values[slot]))
                slot = (slot + 1) & mask
        return (
            np.asarray(out_probe, dtype=np.int64),
            np.asarray(out_value, dtype=np.int64),
        )

    @property
    def mean_insert_probes(self) -> float:
        if self.size == 0:
            return 0.0
        return self.total_insert_probes / self.size

    @property
    def footprint_bytes(self) -> int:
        return self.capacity * _SLOT_BYTES


class HashJoin:
    """Hash join: build on the smaller relation (S), probe with R.

    "We flip the input relations to build on the smaller relation and
    reduce the hash table size.  The hash table is kept in GPU memory.
    ... the query builds the hash table on-the-fly, which we include in
    the throughput measurement." (Section 3.2)
    """

    name = "hash join"

    def __init__(
        self,
        relation: Relation,
        load_factor: float = DEFAULT_HASH_LOAD_FACTOR,
        block_keys: int = DEFAULT_HASH_BLOCK_KEYS,
    ):
        self.relation = relation
        self.load_factor = load_factor
        self.block_keys = block_keys

    # ------------------------------------------------------------------
    # Functional path.
    # ------------------------------------------------------------------

    def join(self, probe_keys: np.ndarray) -> JoinResult:
        """Exact join; requires a materialized R (the probe side scan)."""
        if not isinstance(self.relation.column, MaterializedColumn):
            raise WorkloadError(
                "the functional hash join scans R and therefore needs a "
                "materialized column; paper-scale runs use estimate()"
            )
        probe_keys = np.asarray(probe_keys, dtype=KEY_DTYPE)
        table = MultiValueHashTable(
            expected_keys=max(1, len(probe_keys)),
            load_factor=self.load_factor,
            block_keys=self.block_keys,
        )
        table.insert(probe_keys, np.arange(len(probe_keys), dtype=np.int64))
        r_keys = self.relation.column.keys
        r_indices, s_indices = table.lookup(r_keys)
        return JoinResult(
            probe_indices=s_indices, build_positions=r_indices
        )

    # ------------------------------------------------------------------
    # Simulated path.
    # ------------------------------------------------------------------

    def _duplicate_sum_of_squares(self, env: QueryEnvironment) -> float:
        """E[sum_k c_k^2] for the S key multiset (c_k = copies of key k).

        Uniform draws of |S| keys over |R| positions give
        ``|S| + |S|*(|S|-1)/|R|``; Zipf(theta) draws give
        ``|S| + |S|*(|S|-1)*sum_p^2`` with the analytic collision mass.
        """
        s = float(env.workload.s_tuples)
        n = float(env.workload.r_tuples)
        if env.workload.zipf_theta > 0:
            collision_mass = zipf_sum_p2(
                env.workload.r_tuples, env.workload.zipf_theta
            )
        else:
            collision_mass = 1.0 / n
        return s + s * (s - 1.0) * collision_mass

    def estimate(self, env: QueryEnvironment) -> QueryCost:
        """Cost-model throughput of the hash join on ``env``'s machine."""
        constants = env.cost_model.constants
        workload = env.workload
        s_tuples = float(workload.s_tuples)
        r_tuples = float(workload.r_tuples)
        capacity = 1
        while capacity < s_tuples / self.load_factor:
            capacity *= 2
        env.machine.memory.allocate(
            capacity * _SLOT_BYTES, MemorySpace.DEVICE, label="hash table"
        )
        sum_c2 = self._duplicate_sum_of_squares(env)
        # Inserting the i-th duplicate of a key walks the key's existing
        # chain: ~i/block_keys block reads; summed over all keys that is
        # (sum c^2 - |S|) / (2 * block_keys).
        duplicate_chain_accesses = max(
            0.0, (sum_c2 - s_tuples) / (2.0 * self.block_keys)
        )
        build = env.machine.scan_counters(env.s_bytes)
        build.add(
            env.machine.gpu_random_counters(
                s_tuples * constants.hash_build_accesses
                + duplicate_chain_accesses,
                bytes_per_access=constants.gpu_sector_bytes,
            )
        )
        build.lookups = 0.0
        # Probing a slot inside a duplicate cluster walks to the cluster's
        # end; averaged over uniform probe slots that adds the cluster
        # "excess area" over the table.
        probe_excess_per_probe = max(0.0, (sum_c2 - s_tuples)) / (
            2.0 * capacity
        )
        probe = env.machine.scan_counters(env.r_bytes)
        probe.add(
            env.machine.gpu_random_counters(
                r_tuples
                * (constants.hash_probe_accesses + probe_excess_per_probe),
                bytes_per_access=constants.gpu_sector_bytes,
            )
        )
        probe.add(env.machine.result_counters(env.result_bytes()))
        probe.lookups = s_tuples
        return env.cost_model.price_stages([("build", build), ("probe", probe)])
