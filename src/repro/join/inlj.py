"""The textbook index-nested-loop join (paper Section 3).

"Our INLJ is a text book implementation that calls an index structure in
the inner loop. ... The GPU implementation of INLJ dispatches a thread for
each tuple of the probe side relation" (Sections 3.2-3.3.1).  By default
probe keys arrive in stream (random) order and nothing mitigates the TLB.

``probe_order="sorted"`` instead assumes the probe stream arrives fully
sorted -- the upper bound of what any key reordering can achieve, and the
idea (from Harmonia, discussed in the paper's Section 4.1) that inspired
windowed partitioning.  The sorted-order A7 ablation shows partitioning
recovers nearly all of this bound without a sort.
"""

from __future__ import annotations

import numpy as np

from ..data.generator import make_ordered_probe_sample, make_probe_keys
from ..errors import ConfigurationError, WorkloadError
from ..indexes.base import Index
from ..perf.model import QueryCost
from .base import JoinResult, QueryEnvironment

_PROBE_ORDERS = ("stream", "sorted")


class IndexNestedLoopJoin:
    """INLJ over any of the paper's index structures."""

    name = "INLJ"

    def __init__(self, index: Index, probe_order: str = "stream"):
        if probe_order not in _PROBE_ORDERS:
            raise ConfigurationError(
                f"probe_order must be one of {_PROBE_ORDERS}, got "
                f"{probe_order!r}"
            )
        self.index = index
        self.probe_order = probe_order

    # ------------------------------------------------------------------
    # Functional path.
    # ------------------------------------------------------------------

    def join(self, probe_keys: np.ndarray) -> JoinResult:
        """Exact join of the probe keys against the indexed relation.

        The whole probe side runs as one fused :meth:`probe_batch` into a
        single preallocated positions buffer (the textbook INLJ *is* one
        GPU-sized batch), rather than through an allocating ``lookup``.
        """
        probe_keys = np.asarray(probe_keys)
        if probe_keys.ndim != 1:
            raise WorkloadError(
                f"probe keys must be one-dimensional, got {probe_keys.ndim}"
            )
        positions = np.empty(len(probe_keys), dtype=np.int64)
        if self.probe_order == "sorted":
            order = np.argsort(probe_keys, kind="stable")
            self.index.probe_batch(probe_keys[order], positions)
            matched = positions >= 0
            return JoinResult(
                probe_indices=order[matched].astype(np.int64),
                build_positions=positions[matched],
            )
        self.index.probe_batch(probe_keys, positions)
        matched = positions >= 0
        return JoinResult(
            probe_indices=np.nonzero(matched)[0].astype(np.int64),
            build_positions=positions[matched],
        )

    # ------------------------------------------------------------------
    # Simulated path.
    # ------------------------------------------------------------------

    def estimate(self, env: QueryEnvironment) -> QueryCost:
        """Cost-model throughput of the INLJ on ``env``'s machine.

        Stream order simulates a random-order probe sample at event
        granularity (the faithful regime for unpartitioned streams);
        sorted order uses a density-preserving ordered sample with the
        analytic TLB, like the partitioned operators.  Either way the S
        table read and result materialization are added on top.
        """
        if env.index is not self.index:
            raise WorkloadError(
                "environment was built for a different index instance"
            )
        s_tuples = float(env.workload.s_tuples)
        env.machine.reset_hierarchy()
        if self.probe_order == "sorted":
            sample = make_ordered_probe_sample(
                env.column,
                env.workload,
                window_tuples=env.workload.s_tuples,
                count=env.sim.probe_sample,
            )
            lookup = self.index.trace_lookups(sample.keys)
            raw = env.machine.simulate_lookups(
                lookup.trace, simulate_tlb=False
            )
        else:
            sample = make_probe_keys(
                env.column, env.workload, count=env.sim.probe_sample
            )
            lookup = self.index.trace_lookups(sample.keys)
            raw = env.machine.simulate_lookups(
                lookup.trace, simulate_tlb=True, shuffle=True
            )
        raw.simt_instructions = lookup.simt.warp_instructions
        raw.divergence_replays = lookup.simt.divergence_replays
        counters = env.machine.scale_lookup_counters(
            raw, s_tuples, replay_factor=self.index.tlb_replay_factor
        )
        if self.probe_order == "sorted":
            gpu = env.spec.gpu
            sweep_pages = self.index.expected_sweep_pages(
                window_lookups=s_tuples,
                page_bytes=gpu.tlb_entry_bytes,
                l2_bytes=gpu.l2_bytes,
                cacheline_bytes=gpu.cacheline_bytes,
            )
            counters.add(
                env.machine.analytic_tlb_counters(
                    sweep_pages, replay_factor=self.index.tlb_replay_factor
                )
            )
        counters.add(env.machine.scan_counters(env.s_bytes))
        counters.add(env.machine.result_counters(env.result_bytes()))
        counters.validate()
        return env.cost_model.price_stages([("probe", counters)])
