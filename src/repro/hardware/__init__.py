"""Simulated hardware substrate: GPUs, interconnects, TLBs, caches, memory.

The paper's experiments run on an IBM POWER9 + NVIDIA V100 (NVLink 2.0)
machine and an A100 (PCIe 4.0) machine.  This package models the
architectural features those experiments exercise:

* interconnect bandwidth/latency and cacheline-granularity remote access
  (:mod:`repro.hardware.interconnect`),
* the GPU last-level TLB whose 32 GiB range causes the paper's throughput
  cliff (:mod:`repro.hardware.tlb`),
* the GPU cache hierarchy that absorbs upper index levels
  (:mod:`repro.hardware.cache`),
* host/device address spaces (:mod:`repro.hardware.memory`), and
* hardware performance counters (:mod:`repro.hardware.counters`)
  standing in for the POWER9 translation-request counters.

Machine presets matching the paper's Table 1 live in
:mod:`repro.hardware.spec`.
"""

from .counters import PerfCounters
from .spec import (
    CpuSpec,
    GpuSpec,
    InterconnectSpec,
    SystemSpec,
    A100_PCIE4,
    GH200_C2C,
    MI250X_IF3,
    PCIE4,
    PCIE5,
    NVLINK2,
    NVLINK_C2C,
    INFINITY_FABRIC3,
    V100_NVLINK2,
    TABLE1_INTERCONNECTS,
)
from .interconnect import InterconnectModel
from .memory import Allocation, MemorySpace, SystemMemory
from .tlb import AnalyticTlb, LruTlb, make_tlb
from .cache import LruCache, SetAssociativeCache

__all__ = [
    "PerfCounters",
    "CpuSpec",
    "GpuSpec",
    "InterconnectSpec",
    "SystemSpec",
    "A100_PCIE4",
    "GH200_C2C",
    "MI250X_IF3",
    "PCIE4",
    "PCIE5",
    "NVLINK2",
    "NVLINK_C2C",
    "INFINITY_FABRIC3",
    "V100_NVLINK2",
    "TABLE1_INTERCONNECTS",
    "InterconnectModel",
    "Allocation",
    "MemorySpace",
    "SystemMemory",
    "AnalyticTlb",
    "LruTlb",
    "make_tlb",
    "LruCache",
    "SetAssociativeCache",
]
