"""GPU cache simulators (L1 and L2).

Section 3.1 of the paper explains why out-of-core index traversals do not
cost ``O(log n)`` *remote* accesses: "After the first few key lookups, the
upper-most tree levels are assumed to be cached and do not incur memory
accesses."  The cache models here make that behaviour emergent: upper index
levels occupy few distinct cachelines, stay resident, and stop generating
interconnect traffic after warm-up.

Two models share one interface (``access(line) -> bool``):

* :class:`LruCache` -- fully associative LRU, used for the L1 hot-line model
  (a hot line ends up in every SM's L1, so modelling one SM's capacity for
  shared hot lines is adequate).
* :class:`SetAssociativeCache` -- set-associative LRU, used for the L2.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from .. import obs
from ..errors import ConfigurationError


class LruCache:
    """Fully associative LRU cache over line numbers."""

    #: Set by the owner to emit ``model.<obs_name>.*`` counters from batch
    #: entry points while tracing is on (see :mod:`repro.obs`).  Scalar
    #: ``access`` never emits: per-access counter updates would dominate
    #: the reference replay loop.
    obs_name: Optional[str] = None

    def __init__(self, capacity_bytes: int, line_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity_bytes}"
            )
        if line_bytes <= 0:
            raise ConfigurationError(
                f"line size must be positive, got {line_bytes}"
            )
        if capacity_bytes < line_bytes:
            raise ConfigurationError(
                f"cache capacity {capacity_bytes} smaller than one line "
                f"({line_bytes})"
            )
        self.capacity_lines = capacity_bytes // line_bytes
        self.line_bytes = line_bytes
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._lines.clear()
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Touch one line; returns True on a hit, inserting on a miss."""
        lines = self._lines
        if line in lines:
            lines.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(lines) >= self.capacity_lines:
            lines.popitem(last=False)
        lines[line] = None
        return False

    def contains(self, line: int) -> bool:
        """Whether a line is resident, without touching LRU state."""
        return line in self._lines

    @property
    def occupancy(self) -> int:
        return len(self._lines)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class SetAssociativeCache:
    """Set-associative LRU cache over line numbers.

    The set index is the line number modulo the set count, matching how
    physical caches slice addresses above the line offset.
    """

    #: See :attr:`LruCache.obs_name`.
    obs_name: Optional[str] = None

    def __init__(self, capacity_bytes: int, line_bytes: int, ways: int = 16):
        if ways <= 0:
            raise ConfigurationError(f"ways must be positive, got {ways}")
        if capacity_bytes <= 0 or line_bytes <= 0:
            raise ConfigurationError(
                "capacity and line size must be positive, got "
                f"{capacity_bytes} / {line_bytes}"
            )
        capacity_lines = capacity_bytes // line_bytes
        if capacity_lines < ways:
            raise ConfigurationError(
                f"capacity of {capacity_lines} lines cannot hold {ways} ways"
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(1, capacity_lines // ways)
        self._sets = [OrderedDict() for __ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Touch one line; returns True on a hit, inserting on a miss."""
        cache_set = self._sets[line % self.num_sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self.ways:
            cache_set.popitem(last=False)
        cache_set[line] = None
        return False

    def access_sequence(self, lines: Iterable[int]) -> int:
        """Touch a sequence of lines; returns the number of misses."""
        before = self.misses
        hits_before = self.hits
        for line in lines:
            self.access(line)
        misses = self.misses - before
        if self.obs_name is not None and obs.enabled():
            hits = self.hits - hits_before
            obs.add(f"model.{self.obs_name}.accesses", float(hits + misses))
            obs.add(f"model.{self.obs_name}.hits", float(hits))
            obs.add(f"model.{self.obs_name}.misses", float(misses))
        return misses

    def contains(self, line: int) -> bool:
        """Whether a line is resident, without touching LRU state."""
        return line in self._sets[line % self.num_sets]

    @property
    def occupancy(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


def lines_for(address: int, size_bytes: int, line_bytes: int) -> range:
    """Line numbers touched by an access of ``size_bytes`` at ``address``.

    Index nodes can span multiple cachelines (a 4 KiB B+tree node covers 32
    lines); a binary search inside such a node touches one line per probe,
    but bulk node reads touch them all.
    """
    if size_bytes <= 0:
        raise ConfigurationError(f"access size must be positive, got {size_bytes}")
    if line_bytes <= 0 or line_bytes & (line_bytes - 1) != 0:
        raise ConfigurationError(
            f"line size must be a positive power of two, got {line_bytes}"
        )
    shift = line_bytes.bit_length() - 1
    first = address >> shift
    last = (address + size_bytes - 1) >> shift
    return range(first, last + 1)
