"""GPU last-level TLB simulators.

The V100's last-level TLB maps a 32 GiB range (Lutz et al. [30]); once the
indexed relation grows past it, concurrent index traversals thrash the TLB
and every remote access pays an ~3 us translation round trip -- the cliff in
the paper's Fig. 3.  Two implementations share one interface:

* :class:`LruTlb` -- exact LRU replacement over page numbers, replayed in
  access order.  This is the reference model; the thrashing behaviour is
  emergent.
* :class:`AnalyticTlb` -- closed-form miss-rate approximation for uniform
  random page access, used by wide parameter sweeps where replaying every
  access would dominate runtime.

Both consume *page numbers* (address // page size); the caller decides the
page size (1 GiB huge pages in the paper's setup).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

import numpy as np

from .. import obs
from ..errors import ConfigurationError


class LruTlb:
    """Exact LRU TLB over huge-page numbers.

    Accesses must be fed in program order; the executor interleaves
    concurrent threads round-robin before calling :meth:`access_sequence`,
    which is what makes inter-thread eviction (thrashing) visible.
    """

    #: Set by the owner to emit ``model.<obs_name>.*`` counters from
    #: :meth:`access_sequence` while tracing is on (see :mod:`repro.obs`).
    obs_name: Optional[str] = None

    def __init__(self, entries: int):
        if entries <= 0:
            raise ConfigurationError(f"TLB entries must be positive, got {entries}")
        self.entries = entries
        self._cached: "OrderedDict[int, None]" = OrderedDict()
        self._seen = set()
        self.hits = 0
        self.misses = 0
        #: First-touch (compulsory) misses.  Sampled simulations must not
        #: scale these linearly: the page universe is fixed, so cold misses
        #: are a one-off cost however many lookups run.
        self.cold_misses = 0

    def reset(self) -> None:
        """Clear cached translations and counters."""
        self._cached.clear()
        self._seen.clear()
        self.hits = 0
        self.misses = 0
        self.cold_misses = 0

    def access(self, page: int) -> bool:
        """Translate one page; returns True on a hit."""
        cached = self._cached
        if page in cached:
            cached.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if page not in self._seen:
            self._seen.add(page)
            self.cold_misses += 1
        if len(cached) >= self.entries:
            cached.popitem(last=False)
        cached[page] = None
        return False

    def access_sequence(self, pages: Iterable[int]) -> int:
        """Translate a sequence of pages; returns the number of misses."""
        before = self.misses
        hits_before = self.hits
        cold_before = self.cold_misses
        for page in pages:
            self.access(page)
        misses = self.misses - before
        if self.obs_name is not None and obs.enabled():
            hits = self.hits - hits_before
            cold = self.cold_misses - cold_before
            obs.add(f"model.{self.obs_name}.accesses", float(hits + misses))
            obs.add(f"model.{self.obs_name}.hits", float(hits))
            obs.add(f"model.{self.obs_name}.misses", float(misses))
            if cold:
                obs.add(f"model.{self.obs_name}.cold_misses", float(cold))
        return misses

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total


class AnalyticTlb:
    """Closed-form TLB model for uniform random page access.

    For an LRU cache of ``C`` entries receiving independent uniform accesses
    over ``P`` distinct pages, the steady-state hit probability is the
    probability that a page's previous access lies within the last ``C``
    distinct pages -- approximately ``min(1, C / P)``.  Cold misses (first
    touch of each page) are accounted separately.

    This matches the exact simulator for the uniform workloads of the
    paper's Figs. 3-6 (tests assert agreement) and runs in O(1).
    """

    def __init__(self, entries: int):
        if entries <= 0:
            raise ConfigurationError(f"TLB entries must be positive, got {entries}")
        self.entries = entries
        self.hits = 0.0
        self.misses = 0.0

    def reset(self) -> None:
        self.hits = 0.0
        self.misses = 0.0

    def access_uniform(self, num_accesses: float, num_pages: int) -> float:
        """Model ``num_accesses`` uniform accesses over ``num_pages`` pages.

        Returns the expected number of misses and accumulates counters.
        """
        if num_accesses < 0:
            raise ConfigurationError(
                f"access count must be non-negative, got {num_accesses}"
            )
        if num_pages <= 0:
            raise ConfigurationError(f"page count must be positive, got {num_pages}")
        if num_pages <= self.entries:
            # Everything fits: only cold misses.
            misses = float(min(num_accesses, num_pages))
        else:
            steady_hit = self.entries / num_pages
            misses = num_accesses * (1.0 - steady_hit)
        hits = num_accesses - misses
        self.misses += misses
        self.hits += hits
        return misses

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total


def make_tlb(entries: int, exact: bool = True):
    """Factory matching :attr:`repro.config.SimulationConfig.exact_tlb`."""
    if exact:
        return LruTlb(entries)
    return AnalyticTlb(entries)


def pages_for(addresses: np.ndarray, page_bytes: int) -> np.ndarray:
    """Map byte addresses to page numbers.

    ``page_bytes`` must be a power of two (huge pages always are); using a
    shift keeps this exact for addresses beyond 2**53.
    """
    if page_bytes <= 0 or page_bytes & (page_bytes - 1) != 0:
        raise ConfigurationError(
            f"page size must be a positive power of two, got {page_bytes}"
        )
    shift = page_bytes.bit_length() - 1
    return addresses >> shift
