"""Simulated host and device address spaces.

Base relations and (in the paper's configuration) all index structures live
in CPU memory and are accessed by the GPU across the interconnect
(Section 3.2: "All index structures and base relations are stored in CPU
memory, and are directly accessed over the interconnect").  Hash tables and
join results live in GPU memory.

The simulator needs real, distinct addresses -- the TLB and caches operate
on pages and lines of those addresses -- but never real backing storage.
:class:`SystemMemory` is therefore a bump allocator over two disjoint
address ranges with capacity accounting, so experiments hit the same
capacity walls the paper reports (Section 3.2: B+tree and Harmonia reduce
the maximum size of R "due to memory capacity constraints").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import CapacityError, ConfigurationError
from ..units import format_bytes
from .spec import SystemSpec


class MemorySpace(enum.Enum):
    """Which physical memory an allocation lives in."""

    HOST = "host"
    DEVICE = "device"


#: Base virtual addresses of the two spaces.  Far apart so that a stray
#: address arithmetic bug lands in unmapped territory instead of silently
#: aliasing the other space.
HOST_BASE = 0x0100_0000_0000
DEVICE_BASE = 0x7000_0000_0000


@dataclass(frozen=True)
class Allocation:
    """A contiguous simulated allocation.

    Attributes:
        base: first byte address.
        size: length in bytes.
        space: host or device memory.
        label: human-readable purpose, for capacity error messages.
    """

    base: int
    size: int
    space: MemorySpace
    label: str

    @property
    def end(self) -> int:
        """One past the last byte address."""
        return self.base + self.size

    def address_of(self, offset: int) -> int:
        """Address of a byte offset, bounds-checked."""
        if not 0 <= offset < self.size:
            raise ConfigurationError(
                f"offset {offset} outside allocation '{self.label}' "
                f"of {format_bytes(self.size)}"
            )
        return self.base + offset

    def contains(self, address: int) -> bool:
        """Whether a byte address falls inside this allocation."""
        return self.base <= address < self.end


@dataclass
class SystemMemory:
    """Bump allocator over the host and device address spaces of a machine.

    Alignment: host allocations are aligned to the machine's huge-page size
    (matching the paper's 1 GiB huge-page setup, so an allocation's pages
    are exclusively its own); device allocations to 256 bytes.
    """

    spec: SystemSpec
    _next: Dict[MemorySpace, int] = field(init=False)
    _used: Dict[MemorySpace, int] = field(init=False)
    allocations: List[Allocation] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._next = {MemorySpace.HOST: HOST_BASE, MemorySpace.DEVICE: DEVICE_BASE}
        self._used = {MemorySpace.HOST: 0, MemorySpace.DEVICE: 0}

    def _capacity(self, space: MemorySpace) -> int:
        if space is MemorySpace.HOST:
            return self.spec.cpu.memory_capacity_bytes
        return self.spec.gpu.memory_capacity_bytes

    def _alignment(self, space: MemorySpace) -> int:
        if space is MemorySpace.HOST:
            return self.spec.huge_page_bytes
        return 256

    def allocate(self, size: int, space: MemorySpace, label: str) -> Allocation:
        """Reserve ``size`` bytes; raises :class:`CapacityError` when full.

        Capacity accounting uses the *aligned* size: with 1 GiB huge pages a
        1-byte host allocation still pins a whole page, exactly as on the
        paper's machine.
        """
        if size <= 0:
            raise ConfigurationError(
                f"allocation size must be positive, got {size} for '{label}'"
            )
        alignment = self._alignment(space)
        aligned_size = (size + alignment - 1) // alignment * alignment
        capacity = self._capacity(space)
        if self._used[space] + aligned_size > capacity:
            raise CapacityError(
                f"{space.value} memory exhausted allocating '{label}': "
                f"need {format_bytes(aligned_size)}, "
                f"used {format_bytes(self._used[space])} of "
                f"{format_bytes(capacity)}"
            )
        base = self._next[space]
        allocation = Allocation(base=base, size=size, space=space, label=label)
        self._next[space] = base + aligned_size
        self._used[space] += aligned_size
        self.allocations.append(allocation)
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Release an allocation's capacity (addresses are not reused)."""
        if allocation not in self.allocations:
            raise ConfigurationError(
                f"allocation '{allocation.label}' is not live in this memory"
            )
        alignment = self._alignment(allocation.space)
        aligned_size = (
            (allocation.size + alignment - 1) // alignment * alignment
        )
        self._used[allocation.space] -= aligned_size
        self.allocations.remove(allocation)

    def used(self, space: MemorySpace) -> int:
        """Bytes currently reserved in a space (aligned sizes)."""
        return self._used[space]

    def available(self, space: MemorySpace) -> int:
        """Bytes still allocatable in a space."""
        return self._capacity(space) - self._used[space]

    def find(self, address: int) -> Allocation:
        """The live allocation containing ``address``.

        Raises :class:`ConfigurationError` for unmapped addresses; the
        simulator uses this to catch wild accesses from traversal bugs.
        """
        for allocation in self.allocations:
            if allocation.contains(address):
                return allocation
        raise ConfigurationError(f"address {address:#x} is not mapped")
