"""Vectorized cache/TLB models (the fast replay engine).

The reference models in :mod:`repro.hardware.cache` and
:mod:`repro.hardware.tlb` replay one line per Python call -- faithful but
slow when a figure sweeps millions of coalesced transactions.  This module
re-implements the same three policies with numpy batch kernels:

* :class:`VectorLruCache` -- fully associative LRU.  Processes a stream in
  chunks of at most ``min(capacity, 8192)`` accesses.  Within a chunk every
  re-access is a guaranteed hit (a chunk is shorter than the capacity, so
  nothing evicts between two touches of the same key), and accesses to
  pre-chunk residents hit iff ``depth + new_distinct_before < capacity`` --
  a stack-distance test resolved with two cumulative bounds and an exact
  dominance count for the few accesses that land between the bounds.
* :class:`VectorSetAssociativeCache` -- set-associative LRU.  Transactions
  are grouped per set; short sub-streams replay column-by-column against a
  ``(sets, ways)`` timestamp register file (each Python-level step retires
  one transaction for *every* active set at once), long low-diversity ones
  take a first-occurrence shortcut, and long high-diversity ones are
  concatenated into one shared stack-distance kernel
  (:meth:`~VectorSetAssociativeCache._replay_windows`).
* :class:`VectorLruTlb` -- :class:`VectorLruCache` plus first-touch (cold
  miss) tracking, mirroring :class:`repro.hardware.tlb.LruTlb`.

Exactness is the contract, not an aspiration: every model produces the
same per-access hit/miss outcomes, the same eviction order, and the same
counters as its ``OrderedDict`` reference on any stream (see
``tests/hardware/test_fast_models.py``).  The scalar ``access`` API is kept
for drop-in compatibility; the batch APIs are what the executor's fast
path uses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

import numpy as np

from .. import obs
from ..errors import ConfigurationError

#: Chunk length for the fully-associative models.  Must not exceed the
#: capacity (the free-hit argument above needs it).  4096 balances the
#: per-chunk numpy call overhead against the in-chunk ambiguity band,
#: which grows superlinearly with the chunk length (measured fastest on
#: the standard sweeps among 1k-16k).
_CHUNK = 4096

#: Position bits packed next to a key when stable-sorting ``(key, pos)``
#: pairs as one int64.  Bounds the batch length one packed sort can cover.
_POS_BITS = 21
_POS_CAP = 1 << _POS_BITS

#: Sorts below every valid way timestamp (those are >= -1): selects a
#: matching way ahead of the LRU way in the column machine's fused pick.
_MATCH_RANK = np.int64(-(2**62))

#: Set sub-streams at least this long get the low-diversity fast path
#: (see ``VectorSetAssociativeCache._replay_hot_segment``).
_HOT_SEGMENT = 512

#: Set sub-streams at least this long that are *not* low-diversity are
#: replayed with the lag-window stack-distance kernel rather than the
#: column machine, which would otherwise degenerate to one near-empty
#: column per transaction.
_WINDOW_SEGMENT = 512


def _emit_model_counters(name: str, accesses: int, hits: int) -> None:
    """Batch-granularity obs counters for one named hierarchy level."""
    obs.add(f"model.{name}.accesses", float(accesses))
    obs.add(f"model.{name}.hits", float(hits))
    obs.add(f"model.{name}.misses", float(accesses - hits))


def _dense_ids(keys: np.ndarray, extra: np.ndarray):
    """Rank-compress ``extra + keys`` into dense ids with one packed sort.

    Returns ``(key_ids, extra_ids, id_to_key)`` where ids index
    ``id_to_key``.  Avoids ``np.unique`` (mergesort) by packing the
    position into the low bits and using the default sort.
    """
    both = np.concatenate([extra, keys]) if len(extra) else keys
    n = len(both)
    if n == 0:
        empty = np.empty(0, np.int64)
        return empty, empty, empty
    packed = np.sort((both << _POS_BITS) | np.arange(n, dtype=np.int64))
    skey = packed >> _POS_BITS
    spos = packed & (_POS_CAP - 1)
    new_group = np.ones(n, bool)
    new_group[1:] = skey[1:] != skey[:-1]
    gid = np.cumsum(new_group, dtype=np.int64) - 1
    ids = np.empty(n, np.int64)
    ids[spos] = gid
    id_to_key = skey[new_group]
    return ids[len(extra):], ids[: len(extra)], id_to_key


def _segment_distinct(
    k_keys: np.ndarray,
    starts: np.ndarray,
    seg_len: np.ndarray,
    segs: np.ndarray,
) -> np.ndarray:
    """Distinct-line count of each chosen segment, in one packed sort.

    Works on the set-grouped stream: a line maps to exactly one set, so
    grouping the chosen segments' values globally by line is grouping
    them per segment.
    """
    lens = seg_len[segs]
    off = np.zeros(len(segs) + 1, np.int64)
    np.cumsum(lens, out=off[1:])
    total = int(off[-1])
    sid = np.repeat(np.arange(len(segs)), lens)
    idx = np.arange(total) + np.repeat(starts[segs] - off[:-1], lens)
    packed = np.sort(
        (k_keys[idx] << _POS_BITS) | np.arange(total, dtype=np.int64)
    )
    pk = packed >> _POS_BITS
    group_start = np.ones(total, bool)
    group_start[1:] = pk[1:] != pk[:-1]
    first_pos = (packed & (_POS_CAP - 1))[group_start]
    return np.bincount(sid[first_pos], minlength=len(segs))


class VectorLruCache:
    """Fully associative LRU over line numbers, batch-vectorized.

    Interface-compatible with :class:`repro.hardware.cache.LruCache`; adds
    :meth:`access_batch` and :meth:`resident_lines`.
    """

    #: Set by the owner (e.g. ``MachineModel`` names its levels "l1"/"l2")
    #: to emit ``model.<obs_name>.*`` counters from batch accesses while
    #: tracing is on.  Unnamed models stay silent.
    obs_name: Optional[str] = None

    def __init__(self, capacity_bytes: int, line_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity_bytes}"
            )
        if line_bytes <= 0:
            raise ConfigurationError(
                f"line size must be positive, got {line_bytes}"
            )
        if capacity_bytes < line_bytes:
            raise ConfigurationError(
                f"cache capacity {capacity_bytes} smaller than one line "
                f"({line_bytes})"
            )
        self.capacity_lines = capacity_bytes // line_bytes
        self.line_bytes = line_bytes
        self._stack = np.empty(0, np.int64)  # resident keys, MRU first
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._stack = np.empty(0, np.int64)
        self.hits = 0
        self.misses = 0

    # -- batch path ----------------------------------------------------

    def access_batch(self, lines: np.ndarray) -> np.ndarray:
        """Touch a stream of lines; returns the per-access hit mask."""
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        n = len(lines)
        if n == 0:
            return np.zeros(0, bool)
        hit_mask = np.empty(n, bool)
        limit = _POS_CAP - self.capacity_lines - 1
        for lo in range(0, n, limit):
            batch = lines[lo : lo + limit]
            keys, stack_ids, id_to_key = _dense_ids(batch, self._stack)
            hits, stack = _lru_replay(
                keys, self.capacity_lines, stack_ids, len(id_to_key)
            )
            self._stack = id_to_key[stack]
            hit_mask[lo : lo + limit] = hits
        nhit = int(np.count_nonzero(hit_mask))
        self.hits += nhit
        self.misses += n - nhit
        if self.obs_name is not None and obs.enabled():
            _emit_model_counters(self.obs_name, n, nhit)
        return hit_mask

    # -- scalar compatibility ------------------------------------------

    def access(self, line: int) -> bool:
        """Touch one line; returns True on a hit, inserting on a miss."""
        return bool(self.access_batch(np.array([line], np.int64))[0])

    def contains(self, line: int) -> bool:
        """Whether a line is resident, without touching LRU state."""
        return bool(np.any(self._stack == line))

    def resident_lines(self) -> np.ndarray:
        """Resident lines in LRU-to-MRU order (OrderedDict iteration order)."""
        return self._stack[::-1].copy()

    @property
    def occupancy(self) -> int:
        return len(self._stack)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


def _lru_replay(keys: np.ndarray, capacity: int, stack: np.ndarray, umax: int):
    """Exact LRU replay over dense non-negative ids.

    ``stack`` holds the resident ids, most recent first.  Returns the hit
    mask and the updated stack.  See the module docstring for the
    stack-distance argument behind the chunked evaluation.
    """
    n = len(keys)
    T = min(capacity, _CHUNK)
    hits = np.zeros(n, bool)
    depth_map = np.full(umax, -1, np.int32)
    for lo in range(0, n, T):
        k = keys[lo : lo + T]
        t = len(k)
        depth_map[stack] = np.arange(len(stack), dtype=np.int32)
        packed = np.sort((k << 14) | np.arange(t, dtype=np.int64))
        pk = packed >> 14
        ppos = packed & 0x3FFF
        group_start = np.ones(t, bool)
        group_start[1:] = pk[1:] != pk[:-1]
        first = np.zeros(t, bool)
        first[ppos] = group_start          # first in-chunk touch, time order
        hits[lo + np.nonzero(~first)[0]] = True   # re-touches always hit
        fk = k[first]
        fpos = np.nonzero(first)[0]
        delta = depth_map[fk].astype(np.int64)    # -1 = not resident
        absent = delta < 0
        resident = ~absent
        # Exclusive running counts over first-occurrences, time order:
        # f = all first-occurrences so far (upper bound on sinkage),
        # g = absent first-occurrences so far (lower bound on sinkage).
        f_excl = np.arange(len(fk), dtype=np.int64)
        g_excl = np.cumsum(absent, dtype=np.int64) - absent
        free_hit = resident & (delta + f_excl < capacity)
        certain_miss = absent | (delta + g_excl >= capacity)
        ambiguous = ~(free_hit | certain_miss)
        first_hit = free_hit
        n_amb = int(np.count_nonzero(ambiguous))
        if n_amb:
            # Exact sinkage: of the f_excl first-occurrences before the
            # query, those touching a shallower resident do not push it
            # down -- count them (a 2-D dominance count: src_t < qt and
            # src_d <= qd) and subtract.  The count is evaluated blocked:
            # residents are split into 64-wide time blocks whose depths
            # are sorted once (all blocks in a single flat sort, keyed by
            # block * (capacity + 1) + depth), full blocks answer with one
            # batched searchsorted, and each query's partial block is a
            # 64-element masked compare -- O((A + R) log) instead of the
            # A x R broadcast.
            src_t = f_excl[resident]            # strictly increasing
            src_d = delta[resident]
            qt = f_excl[ambiguous]
            qd = delta[ambiguous]
            L = 64
            num_blocks = -(-len(src_d) // L)
            span = capacity + 1                 # depths < capacity; pad = capacity
            padded = np.full(num_blocks * L, capacity, np.int64)
            padded[: len(src_d)] = src_d
            block_of = np.repeat(
                np.arange(num_blocks, dtype=np.int64), L
            )
            flat = np.sort(block_of * span + padded)
            eligible = np.searchsorted(src_t, qt, side="left")
            full_blocks = eligible // L
            remainder = eligible - full_blocks * L
            q_keys = (
                np.arange(num_blocks, dtype=np.int64)[:, None] * span
                + qd[None, :]
            )
            per_block = np.searchsorted(
                flat, q_keys.reshape(-1), side="right"
            ).reshape(num_blocks, n_amb)
            per_block -= np.arange(num_blocks, dtype=np.int64)[:, None] * L
            cumulative = np.zeros((num_blocks + 1, n_amb), np.int64)
            np.cumsum(per_block, axis=0, out=cumulative[1:])
            shallower = cumulative[full_blocks, np.arange(n_amb)]
            lane = np.arange(L, dtype=np.int64)
            window = np.minimum(
                full_blocks[:, None] * L + lane[None, :],
                num_blocks * L - 1,
            )
            shallower += (
                (padded[window] <= qd[:, None])
                & (lane[None, :] < remainder[:, None])
            ).sum(axis=1)
            first_hit = free_hit.copy()
            first_hit[ambiguous] = qd + qt - shallower < capacity
        hits[lo + fpos[first_hit]] = True
        # New stack: chunk keys by last touch (newest first), then the
        # untouched old residents in their old order, capped at capacity.
        # (LRU inclusion: the content is always the capacity most recently
        # used distinct keys, whatever evictions happened mid-chunk.)
        group_last = np.ones(t, bool)
        group_last[:-1] = pk[1:] != pk[:-1]
        last_pos = np.sort(ppos[group_last])[::-1]
        depth_map[stack] = -1              # clear for the next chunk
        untouched = np.ones(len(stack), bool)
        untouched[delta[resident]] = False
        stack = np.concatenate([k[last_pos], stack[untouched]])[:capacity]
    return hits, stack


class VectorSetAssociativeCache:
    """Set-associative LRU over line numbers, batch-vectorized.

    Interface-compatible with
    :class:`repro.hardware.cache.SetAssociativeCache`.  State lives in a
    ``(sets, ways)`` pair of arrays: the resident line per way and the
    timestamp of its last touch; eviction picks the stalest way, which is
    exactly LRU.
    """

    #: See :attr:`VectorLruCache.obs_name`.
    obs_name: Optional[str] = None

    def __init__(self, capacity_bytes: int, line_bytes: int, ways: int = 16):
        if ways <= 0:
            raise ConfigurationError(f"ways must be positive, got {ways}")
        if capacity_bytes <= 0 or line_bytes <= 0:
            raise ConfigurationError(
                "capacity and line size must be positive, got "
                f"{capacity_bytes} / {line_bytes}"
            )
        capacity_lines = capacity_bytes // line_bytes
        if capacity_lines < ways:
            raise ConfigurationError(
                f"capacity of {capacity_lines} lines cannot hold {ways} ways"
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(1, capacity_lines // ways)
        self._tags = np.full((self.num_sets, ways), -1, np.int64)
        self._ts = np.full((self.num_sets, ways), -1, np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._tags.fill(-1)
        self._ts.fill(-1)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access_batch(self, lines: np.ndarray) -> np.ndarray:
        """Touch a stream of lines; returns the per-access hit mask."""
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        n = len(lines)
        if n == 0:
            return np.zeros(0, bool)
        hit_mask = np.empty(n, bool)
        for lo in range(0, n, _POS_CAP):
            batch = lines[lo : lo + _POS_CAP]
            hit_mask[lo : lo + _POS_CAP] = self._replay(batch)
        nhit = int(np.count_nonzero(hit_mask))
        self.hits += nhit
        self.misses += n - nhit
        if self.obs_name is not None and obs.enabled():
            _emit_model_counters(self.obs_name, n, nhit)
        return hit_mask

    def _replay(self, lines: np.ndarray) -> np.ndarray:
        n = len(lines)
        sets = lines % self.num_sets
        # Group transactions per set (stable by position), keeping each
        # set's sub-stream in arrival order.
        order = np.sort((sets << _POS_BITS) | np.arange(n, dtype=np.int64))
        pos = order & (_POS_CAP - 1)
        sval = order >> _POS_BITS
        skeys = lines[pos]
        seg_start = np.ones(n, bool)
        seg_start[1:] = sval[1:] != sval[:-1]
        hits = np.zeros(n, bool)
        # A repeat of the set's previous line is a guaranteed hit on the
        # MRU way and leaves the LRU order unchanged -- drop it up front.
        rerun = np.zeros(n, bool)
        rerun[1:] = (~seg_start[1:]) & (skeys[1:] == skeys[:-1])
        hits[pos[rerun]] = True
        keep = ~rerun
        k_keys = skeys[keep]
        k_pos = pos[keep]
        m = len(k_keys)
        if m == 0:
            return hits
        k_start = seg_start[keep]
        starts = np.nonzero(k_start)[0]
        seg_sets = sval[keep][k_start]
        seg_len = np.diff(np.append(starts, m))
        out_hit = np.empty(m, bool)
        # Long segments leave the column machine, which would spin one
        # near-empty column per transaction for them.  Low-diversity ones
        # (index upper levels: few cachelines whose power-of-two strides
        # alias into a handful of sets) take the hot path; the rest are
        # batched into one multi-segment stack-distance kernel.
        columnar = np.ones(len(seg_len), bool)
        long_segs = np.nonzero(seg_len >= _HOT_SEGMENT)[0]
        if len(long_segs):
            distinct = _segment_distinct(k_keys, starts, seg_len, long_segs)
            for seg in long_segs[distinct <= self.ways].tolist():
                lo = starts[seg]
                sub = k_keys[lo : lo + seg_len[seg]]
                self._replay_hot_segment(int(seg_sets[seg]), sub, out_hit, lo)
                columnar[seg] = False
            windowed = long_segs[
                (distinct > self.ways)
                & (seg_len[long_segs] >= _WINDOW_SEGMENT)
            ]
            if len(windowed):
                self._replay_windows(
                    k_keys,
                    starts[windowed],
                    seg_len[windowed],
                    seg_sets[windowed],
                    out_hit,
                )
                columnar[windowed] = False
        # Longest set first: the sets still active at column c are then a
        # prefix, so each column step slices instead of gathers.
        by_len = np.argsort(-np.where(columnar, seg_len, 0), kind="stable")
        by_len = by_len[: int(np.count_nonzero(columnar))]
        row_sets = seg_sets[by_len]
        row_len = seg_len[by_len]
        row_start = starts[by_len]
        max_cols = int(row_len[0]) if len(row_len) else 0
        tags = self._tags[row_sets]
        ts = self._ts[row_sets]
        rows = np.arange(len(row_sets))
        neg_len = -row_len
        for c in range(max_cols):
            active = int(np.searchsorted(neg_len, -(c + 1), side="right"))
            idx = row_start[:active] + c
            v = k_keys[idx]
            eq = tags[:active] == v[:, None]
            # One fused way pick: a matching way outranks every timestamp
            # (hits refresh their way), otherwise the stalest way loses.
            way = np.where(eq, _MATCH_RANK, ts[:active]).argmin(axis=1)
            r = rows[:active]
            hit = eq[r, way]
            tags[r, way] = v
            ts[r, way] = self._clock + c
            out_hit[idx] = hit
        if len(row_sets):
            self._tags[row_sets] = tags
            self._ts[row_sets] = ts
        self._clock += max(max_cols, self.ways)
        hits[k_pos] = out_hit
        return hits

    def _replay_hot_segment(
        self, set_index: int, sub: np.ndarray, out_hit: np.ndarray, lo: int
    ) -> bool:
        """Exactly replay one set's long sub-stream, if it is low-diversity.

        Returns False (segment not handled) when the sub-stream touches
        more than ``ways`` distinct lines.  Otherwise every access past a
        line's first occurrence is a guaranteed hit (at most ``ways``
        distinct lines means nothing touched this batch is ever evicted),
        so only the first occurrences -- at most ``ways`` of them -- go
        through a sequential LRU replay against the set's prior state.
        """
        t = len(sub)
        packed = np.sort((sub << _POS_BITS) | np.arange(t, dtype=np.int64))
        pk = packed >> _POS_BITS
        group_start = np.ones(t, bool)
        group_start[1:] = pk[1:] != pk[:-1]
        if int(np.count_nonzero(group_start)) > self.ways:
            return False
        ppos = packed & (_POS_CAP - 1)
        first_pos = np.sort(ppos[group_start])
        group_last = np.ones(t, bool)
        group_last[:-1] = pk[1:] != pk[:-1]
        last_pos = np.sort(ppos[group_last])
        seg_hits = np.ones(t, bool)
        # Sequential replay of the <= ways first occurrences.
        tags = self._tags[set_index]
        ts = self._ts[set_index]
        valid = tags >= 0
        state = OrderedDict(
            (int(line), None)
            for line in tags[valid][np.argsort(ts[valid], kind="stable")]
        )
        for p in first_pos.tolist():
            line = int(sub[p])
            if line in state:
                state.move_to_end(line)
            else:
                seg_hits[p] = False
                if len(state) >= self.ways:
                    state.popitem(last=False)
                state[line] = None
        # Refresh recency to the batch's last-touch order.
        for p in last_pos.tolist():
            state.move_to_end(int(sub[p]))
        out_hit[lo : lo + t] = seg_hits
        self._store_set_state(set_index, state)
        return True

    def _replay_windows(
        self,
        k_keys: np.ndarray,
        w_starts: np.ndarray,
        w_lens: np.ndarray,
        w_sets: np.ndarray,
        out_hit: np.ndarray,
    ) -> None:
        """Exactly replay many sets' long, high-diversity sub-streams.

        Stack-distance formulation: within one LRU set of ``ways`` lines
        an access hits iff fewer than ``ways`` distinct lines were touched
        since its previous occurrence.  That count is
        ``d(i) = #{j in (prev(i), i) : prev(j) <= prev(i)}`` -- a window
        position counts iff it is the window's first touch of its line.

        All segments are concatenated (each prefixed by its set's prior
        residents as pseudo-accesses, so carried state needs no special
        casing) and resolved by shared lag passes: a line maps to exactly
        one set, so previous-occurrence windows never cross a segment
        boundary, and one pass serves every segment at once.  Lag passes
        are tiered: most accesses resolve within ``2*ways`` lags; only
        the segments still holding unresolved accesses pay the deep tier,
        and the few accesses even that leaves fall back to a bounded
        backward walk.
        """
        ways = self.ways
        num = len(w_sets)
        row_tags = self._tags[w_sets]
        row_ts = self._ts[w_sets]
        by_age = np.argsort(row_ts, axis=1)  # invalid (-1) first, then LRU->MRU
        aged_tags = np.take_along_axis(row_tags, by_age, axis=1)
        p = (row_tags >= 0).sum(axis=1)
        out_len = p + w_lens
        seg_off = np.zeros(num + 1, np.int64)
        np.cumsum(out_len, out=seg_off[1:])
        total = int(seg_off[-1])
        seg_id = np.repeat(np.arange(num), out_len)
        local = np.arange(total) - seg_off[seg_id]
        is_pref = local < p[seg_id]
        s = np.empty(total, np.int64)
        pref_seg = seg_id[is_pref]
        s[is_pref] = aged_tags[pref_seg, ways - p[pref_seg] + local[is_pref]]
        sub_seg = seg_id[~is_pref]
        sub_local = local[~is_pref] - p[sub_seg]
        s[~is_pref] = k_keys[w_starts[sub_seg] + sub_local]
        hit, todo, pv, pk, ppos = self._window_pass(s)
        for i in np.nonzero(todo)[0].tolist():
            seen = set()
            bottom = pv[i]
            j = i - 1
            while j > bottom and len(seen) < ways:
                seen.add(int(s[j]))
                j -= 1
            hit[i] = len(seen) < ways
        out_hit[w_starts[sub_seg] + sub_local] = hit[~is_pref]
        # New state per set: the ways most recently used distinct lines.
        group_last = np.ones(total, bool)
        group_last[:-1] = pk[1:] != pk[:-1]
        last_pos = np.sort(ppos[group_last])  # ascending = segment-grouped
        lp_seg = seg_id[last_pos]
        counts = np.bincount(lp_seg, minlength=num)
        ends = np.cumsum(counts)
        rank = np.arange(len(last_pos)) - (ends - counts)[lp_seg]
        from_end = counts[lp_seg] - 1 - rank
        keep = from_end < ways
        rows = w_sets[lp_seg[keep]]
        self._tags[w_sets] = -1
        self._ts[w_sets] = -1
        self._tags[rows, from_end[keep]] = s[last_pos[keep]]
        self._ts[rows, from_end[keep]] = self._clock + rank[keep]
        self._clock += total

    def _window_pass(self, s: np.ndarray):
        """Lag-pass stack-distance resolution over a concatenated stream.

        Dense tier: lags up to ``2 * ways`` accumulate d for every
        position with full-array passes.  Sparse tier: the positions
        still unresolved -- typically few, since ``2 * ways`` lags drive
        most big-window accesses past the miss threshold -- continue up
        to ``16 * ways`` lags with gathers over just those positions,
        retiring each as soon as its window is covered (exact) or its
        count reaches ``ways`` (certain miss).

        Returns ``(hit, todo, pv, pk, ppos)``: the per-position hit mask,
        the positions neither tier resolved, previous-occurrence
        positions, and the packed sort's key/position arrays (reused by
        the caller for last-touch extraction).
        """
        length = len(s)
        pos_bits = 22  # one more than _POS_BITS: prefixes extend a batch
        packed = np.sort((s << pos_bits) | np.arange(length, dtype=np.int64))
        pk = packed >> pos_bits
        ppos = packed & ((1 << pos_bits) - 1)
        same = np.zeros(length, bool)
        same[1:] = pk[1:] == pk[:-1]
        pv = np.full(length, -1, np.int64)
        pv[ppos[1:][same[1:]]] = ppos[:-1][same[1:]]
        window = np.arange(length, dtype=np.int64) - pv - 1
        window[pv < 0] = np.iinfo(np.int64).max
        hit = np.zeros(length, bool)
        ways = self.ways
        # Short window: fewer accesses than ways, nothing evicted -> hit.
        hit[(pv >= 0) & (window < ways)] = True
        todo = (pv >= 0) & (window >= ways)
        d = np.zeros(length, np.int64)
        lag = 0
        stop = min(2 * ways, length - 1)
        while lag < stop:
            lag += 1
            # Position i-lag contributes to d(i) iff it lies inside the
            # window and is the window's first touch of its line.
            d[lag:] += (window[lag:] >= lag) & (pv[: length - lag] <= pv[lag:])
        exact = todo & (window <= lag)
        hit[exact] = d[exact] < ways
        todo &= (window > lag) & (d < ways)
        q = np.nonzero(todo)[0]
        deep_stop = min(16 * ways, length - 1)
        dq, wq, pq = d[q], window[q], pv[q]
        while lag < deep_stop and len(q):
            lag += 1
            covered = wq >= lag
            back = np.maximum(q - lag, 0)
            dq += covered & (pv[back] <= pq)
            done = (wq <= lag) | (dq >= ways)
            if done.any():
                hit[q[done]] = dq[done] < ways
                live = ~done
                q, dq, wq, pq = q[live], dq[live], wq[live], pq[live]
        todo = np.zeros(length, bool)
        todo[q] = True
        return hit, todo, pv, pk, ppos

    def _store_set_state(self, set_index: int, state: "OrderedDict") -> None:
        """Write one set's LRU-ordered content back into the register file."""
        tags = self._tags[set_index]
        ts = self._ts[set_index]
        tags.fill(-1)
        ts.fill(-1)
        resident = np.fromiter(state, dtype=np.int64)
        tags[: len(resident)] = resident
        ts[: len(resident)] = self._clock + np.arange(len(resident))
        return None

    # -- scalar compatibility ------------------------------------------

    def access(self, line: int) -> bool:
        """Touch one line; returns True on a hit, inserting on a miss."""
        return bool(self.access_batch(np.array([line], np.int64))[0])

    def access_sequence(self, lines: Iterable[int]) -> int:
        """Touch a sequence of lines; returns the number of misses."""
        arr = np.fromiter(lines, dtype=np.int64)
        before = self.misses
        self.access_batch(arr)
        return self.misses - before

    def contains(self, line: int) -> bool:
        """Whether a line is resident, without touching LRU state."""
        return bool(np.any(self._tags[int(line) % self.num_sets] == line))

    def resident_lines(self, set_index: int) -> np.ndarray:
        """One set's resident lines in LRU-to-MRU order."""
        tags = self._tags[set_index]
        ts = self._ts[set_index]
        valid = tags >= 0
        return tags[valid][np.argsort(ts[valid], kind="stable")]

    @property
    def occupancy(self) -> int:
        return int(np.count_nonzero(self._tags >= 0))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class VectorLruTlb:
    """Exact LRU TLB with cold-miss tracking, batch-vectorized.

    Interface-compatible with :class:`repro.hardware.tlb.LruTlb`.
    """

    #: See :attr:`VectorLruCache.obs_name`.  The inner
    #: :class:`VectorLruCache` stays unnamed so TLB accesses are not
    #: double-counted.
    obs_name: Optional[str] = None

    def __init__(self, entries: int):
        if entries <= 0:
            raise ConfigurationError(
                f"TLB must have a positive number of entries, got {entries}"
            )
        self.entries = entries
        self._cache = VectorLruCache(entries, 1)
        self._seen = np.empty(0, np.int64)  # every page ever touched, sorted
        self.cold_misses = 0

    def reset(self) -> None:
        self._cache.reset()
        self._seen = np.empty(0, np.int64)
        self.cold_misses = 0

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    def access_batch(self, pages: np.ndarray) -> np.ndarray:
        """Touch a stream of pages; returns the per-access hit mask."""
        pages = np.ascontiguousarray(pages, dtype=np.int64)
        if len(pages) == 0:
            return np.zeros(0, bool)
        ordered = np.sort(pages)  # np.unique's mergesort is far slower
        distinct = np.ones(len(ordered), bool)
        distinct[1:] = ordered[1:] != ordered[:-1]
        candidates = ordered[distinct]
        slot = np.searchsorted(self._seen, candidates)
        known = np.zeros(len(candidates), bool)
        inside = slot < len(self._seen)
        known[inside] = self._seen[slot[inside]] == candidates[inside]
        fresh = candidates[~known]
        if len(fresh):
            self.cold_misses += len(fresh)
            merged = np.empty(len(self._seen) + len(fresh), np.int64)
            at = slot[~known] + np.arange(len(fresh))
            merged[at] = fresh
            keep = np.ones(len(merged), bool)
            keep[at] = False
            merged[keep] = self._seen
            self._seen = merged
        hit_mask = self._cache.access_batch(pages)
        if self.obs_name is not None and obs.enabled():
            nhit = int(np.count_nonzero(hit_mask))
            _emit_model_counters(self.obs_name, len(pages), nhit)
            if len(fresh):
                obs.add(f"model.{self.obs_name}.cold_misses", float(len(fresh)))
        return hit_mask

    def access(self, page: int) -> bool:
        """Touch one page; returns True on a TLB hit."""
        return bool(self.access_batch(np.array([page], np.int64))[0])

    def access_sequence(self, pages: Iterable[int]) -> int:
        """Touch a sequence of pages; returns the number of misses."""
        arr = np.fromiter(pages, dtype=np.int64)
        before = self.misses
        self.access_batch(arr)
        return self.misses - before

    def contains(self, page: int) -> bool:
        """Whether a translation is cached, without touching LRU state."""
        return self._cache.contains(page)

    def resident_pages(self) -> np.ndarray:
        """Cached translations in LRU-to-MRU order."""
        return self._cache.resident_lines()

    @property
    def occupancy(self) -> int:
        return self._cache.occupancy

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total
