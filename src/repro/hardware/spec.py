"""Hardware specifications and machine presets.

The numbers collected here come from the paper itself (Table 1, Section 3.2)
and from the hardware analyses it builds on (Lutz et al., SIGMOD 2020/2022):

* interconnect receive bandwidths: paper Table 1;
* V100 TLB range of 32 GiB and ~3 us translation-request latency:
  Section 3.3.2, citing Lutz et al. [30];
* GPU core counts / memory bandwidths: vendor whitepapers cited by the
  paper ([33] for V100).

Nothing in this module computes; it is the single place where hardware
constants live, so every model component and every experiment reads the
same values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..units import GIB, GB, KIB, MIB, MICROSECOND


@dataclass(frozen=True)
class InterconnectSpec:
    """A CPU-GPU interconnect.

    Attributes:
        name: human-readable name, as in the paper's Table 1.
        bandwidth_bytes: peak receive bandwidth in bytes/second (decimal GB/s
            as reported by vendors; Table 1 of the paper).
        latency_seconds: one-way latency of a single cacheline fetch.
        random_efficiency: fraction of peak bandwidth achieved by
            data-dependent (random) cacheline fetches issued from an index
            traversal kernel.  This effective value folds together link
            protocol overheads and the GPU's finite memory-level
            parallelism for dependent accesses; it is calibrated so that
            partitioned INLJ throughput at 111 GiB lands on the paper's
            Fig. 5 anchors.  Fast interconnects sustain a much larger
            absolute random-access bandwidth than PCIe (Lutz et al. [29]),
            which is why the A100/PCIe4 crossover in Fig. 9 moves right.
        translation_latency_seconds: round-trip cost of a GPU address
            translation request to the CPU IOMMU ("on the order of 3 us",
            Section 3.3.2).
    """

    name: str
    bandwidth_bytes: float
    latency_seconds: float
    random_efficiency: float
    translation_latency_seconds: float = 3.0 * MICROSECOND

    def __post_init__(self) -> None:
        if self.bandwidth_bytes <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth_bytes}"
            )
        if self.latency_seconds <= 0:
            raise ConfigurationError(
                f"latency must be positive, got {self.latency_seconds}"
            )
        if not 0.0 < self.random_efficiency <= 1.0:
            raise ConfigurationError(
                "random_efficiency must be in (0, 1], got "
                f"{self.random_efficiency}"
            )
        if self.translation_latency_seconds <= 0:
            raise ConfigurationError(
                "translation latency must be positive, got "
                f"{self.translation_latency_seconds}"
            )


@dataclass(frozen=True)
class GpuSpec:
    """A GPU's execution and memory-system parameters.

    Attributes:
        name: marketing name.
        sm_count: number of streaming multiprocessors.
        threads_per_sm: maximum resident threads per SM.
        warp_size: threads per warp (32 on NVIDIA GPUs, Section 2.2).
        clock_hz: SM clock.
        memory_bandwidth_bytes: device (HBM) bandwidth in bytes/second.
        memory_capacity_bytes: device memory capacity.
        memory_random_efficiency: fraction of device bandwidth achieved by
            random accesses (hash-table probes are such accesses).
        l2_bytes: last-level cache capacity.
        l1_bytes: per-SM L1/shared-memory capacity.
        cacheline_bytes: cache line size (128 B on NVIDIA GPUs).
        tlb_range_bytes: amount of memory the last-level TLB can map.  The
            V100's is 32 GiB (Lutz et al. [30]); the paper's throughput
            cliff sits exactly there.
        tlb_entry_bytes: translation granularity of one TLB entry.  GPU
            MMU caches translate at 2 MiB granularity even when the OS
            backs memory with 1 GiB huge pages, so entry count =
            range / 2 MiB.  (For uniform random access the miss *rate*
            depends only on range/data-size, but sweep-order access --
            partitioned lookups -- pays one miss per entry-granule.)
        tlb_replay_factor: translation requests issued per TLB miss.  A
            divergent warp replays a memory instruction for each distinct
            page its lanes touch; measured request counts therefore exceed
            the raw miss count.  Calibrated so binary search lands near the
            paper's ~105 requests/key at 111 GiB (Section 3.3.2).
    """

    name: str
    sm_count: int
    threads_per_sm: int
    warp_size: int
    clock_hz: float
    memory_bandwidth_bytes: float
    memory_capacity_bytes: int
    memory_random_efficiency: float
    l2_bytes: int
    l1_bytes: int
    cacheline_bytes: int
    tlb_range_bytes: int
    tlb_entry_bytes: int
    tlb_replay_factor: float

    def __post_init__(self) -> None:
        positive_fields = (
            "sm_count",
            "threads_per_sm",
            "warp_size",
            "clock_hz",
            "memory_bandwidth_bytes",
            "memory_capacity_bytes",
            "l2_bytes",
            "l1_bytes",
            "cacheline_bytes",
            "tlb_range_bytes",
            "tlb_entry_bytes",
            "tlb_replay_factor",
        )
        for field in positive_fields:
            value = getattr(self, field)
            if value <= 0:
                raise ConfigurationError(f"{field} must be positive, got {value}")
        if self.tlb_range_bytes % self.tlb_entry_bytes != 0:
            raise ConfigurationError(
                "TLB range must be a whole number of entry granules: "
                f"{self.tlb_range_bytes} % {self.tlb_entry_bytes} != 0"
            )
        if not 0.0 < self.memory_random_efficiency <= 1.0:
            raise ConfigurationError(
                "memory_random_efficiency must be in (0, 1], got "
                f"{self.memory_random_efficiency}"
            )

    @property
    def tlb_entries(self) -> int:
        """Number of last-level TLB entries."""
        return self.tlb_range_bytes // self.tlb_entry_bytes

    @property
    def max_resident_threads(self) -> int:
        """Total threads the GPU can keep in flight at once."""
        return self.sm_count * self.threads_per_sm

    @property
    def max_resident_warps(self) -> int:
        """Total warps the GPU can keep in flight at once."""
        return self.max_resident_threads // self.warp_size


@dataclass(frozen=True)
class CpuSpec:
    """The host CPU and its memory, where base relations live.

    The paper's machine has two POWER9 CPUs (16 cores each, 3.8 GHz) and
    256 GiB of memory; CPU memory bandwidth is what ultimately bounds any
    out-of-core access path (Section 1).
    """

    name: str
    core_count: int
    clock_hz: float
    memory_bandwidth_bytes: float
    memory_capacity_bytes: int

    def __post_init__(self) -> None:
        for field in (
            "core_count",
            "clock_hz",
            "memory_bandwidth_bytes",
            "memory_capacity_bytes",
        ):
            value = getattr(self, field)
            if value <= 0:
                raise ConfigurationError(f"{field} must be positive, got {value}")


@dataclass(frozen=True)
class SystemSpec:
    """A complete benchmark machine: CPU + interconnect + GPU.

    Attributes:
        huge_page_bytes: operating-system page size backing the base
            relations.  The paper uses 1 GiB huge pages (Section 3.2); the
            GPU TLB entry count comes from the GPU spec, not the OS page size.
    """

    name: str
    cpu: CpuSpec
    gpu: GpuSpec
    interconnect: InterconnectSpec
    huge_page_bytes: int

    def __post_init__(self) -> None:
        if self.huge_page_bytes <= 0:
            raise ConfigurationError(
                f"huge_page_bytes must be positive, got {self.huge_page_bytes}"
            )
        if self.huge_page_bytes & (self.huge_page_bytes - 1) != 0:
            raise ConfigurationError(
                f"huge_page_bytes must be a power of two, got "
                f"{self.huge_page_bytes}"
            )

    @property
    def tlb_entries(self) -> int:
        """Number of last-level GPU TLB entries."""
        return self.gpu.tlb_entries

    def with_huge_pages(self, huge_page_bytes: int) -> "SystemSpec":
        """Return a copy of this machine using a different OS page size."""
        return replace(self, huge_page_bytes=huge_page_bytes)


# ---------------------------------------------------------------------------
# Interconnect presets (paper Table 1: receive bandwidth).
# ---------------------------------------------------------------------------

PCIE4 = InterconnectSpec(
    name="PCI-e 4.0",
    bandwidth_bytes=32 * GB,
    latency_seconds=1.3 * MICROSECOND,
    # PCIe handles fine-grained, data-dependent accesses poorly (TLP
    # overheads and no cacheline-granularity coherence); the absolute
    # random bandwidth (32 GB/s x 0.40 = 12.8 GB/s) stays far below
    # NVLink 2.0's (75 GB/s x 0.45 = 33.8 GB/s).
    random_efficiency=0.40,
)

PCIE5 = InterconnectSpec(
    name="PCI-e 5.0",
    bandwidth_bytes=64 * GB,
    latency_seconds=1.1 * MICROSECOND,
    random_efficiency=0.40,
)

INFINITY_FABRIC3 = InterconnectSpec(
    name="Infinity Fabric 3",
    bandwidth_bytes=72 * GB,
    latency_seconds=0.9 * MICROSECOND,
    random_efficiency=0.42,
)

NVLINK2 = InterconnectSpec(
    name="NVLink 2.0",
    bandwidth_bytes=75 * GB,
    latency_seconds=0.8 * MICROSECOND,
    # Calibrated against the paper's Fig. 5: partitioned INLJ anchors of
    # 0.6/0.7/1.0/1.9 Q/s at 111 GiB imply ~34 GB/s of effective
    # dependent-access bandwidth on the V100 (see spec docstring).
    random_efficiency=0.45,
)

NVLINK_C2C = InterconnectSpec(
    name="NVLink C2C",
    bandwidth_bytes=450 * GB,
    latency_seconds=0.4 * MICROSECOND,
    random_efficiency=0.50,
)

#: The rows of the paper's Table 1, in paper order: (GPU, interconnect).
TABLE1_INTERCONNECTS = (
    ("various", PCIE4),
    ("various", PCIE5),
    ("AMD MI250X", INFINITY_FABRIC3),
    ("NVIDIA V100", NVLINK2),
    ("NVIDIA GH200", NVLINK_C2C),
)


# ---------------------------------------------------------------------------
# GPU presets.
# ---------------------------------------------------------------------------

_V100_GPU = GpuSpec(
    name="NVIDIA Tesla V100-SXM2",
    sm_count=80,
    threads_per_sm=2048,
    warp_size=32,
    clock_hz=1.53e9,
    memory_bandwidth_bytes=900 * GB,
    memory_capacity_bytes=32 * GIB,
    memory_random_efficiency=0.45,
    l2_bytes=6 * MIB,
    l1_bytes=128 * KIB,
    cacheline_bytes=128,
    tlb_range_bytes=32 * GIB,
    tlb_entry_bytes=2 * MIB,
    tlb_replay_factor=3.0,
)

_A100_GPU = GpuSpec(
    name="NVIDIA A100",
    sm_count=108,
    threads_per_sm=2048,
    warp_size=32,
    clock_hz=1.41e9,
    memory_bandwidth_bytes=1555 * GB,
    memory_capacity_bytes=40 * GIB,
    memory_random_efficiency=0.45,
    l2_bytes=40 * MIB,
    l1_bytes=192 * KIB,
    cacheline_bytes=128,
    # Ampere enlarged the MMU caches; the paper does not report an A100
    # cliff, and with windowed partitioning (its Fig. 9 configuration) the
    # TLB is not stressed.  We model a 64 GiB range.
    tlb_range_bytes=64 * GIB,
    tlb_entry_bytes=2 * MIB,
    tlb_replay_factor=3.0,
)

_H200_GPU = GpuSpec(
    name="NVIDIA GH200 (Hopper die)",
    sm_count=132,
    threads_per_sm=2048,
    warp_size=32,
    clock_hz=1.83e9,
    memory_bandwidth_bytes=4000 * GB,
    memory_capacity_bytes=96 * GIB,
    memory_random_efficiency=0.50,
    l2_bytes=60 * MIB,
    l1_bytes=256 * KIB,
    cacheline_bytes=128,
    tlb_range_bytes=128 * GIB,
    tlb_entry_bytes=2 * MIB,
    tlb_replay_factor=3.0,
)

_MI250X_GPU = GpuSpec(
    name="AMD MI250X (one GCD)",
    sm_count=110,
    threads_per_sm=2048,
    warp_size=32,  # modelled as 32-wide for comparability
    clock_hz=1.7e9,
    memory_bandwidth_bytes=1638 * GB,
    memory_capacity_bytes=64 * GIB,
    memory_random_efficiency=0.45,
    l2_bytes=8 * MIB,
    l1_bytes=128 * KIB,
    cacheline_bytes=128,
    tlb_range_bytes=32 * GIB,
    tlb_entry_bytes=2 * MIB,
    tlb_replay_factor=3.0,
)


# ---------------------------------------------------------------------------
# CPU presets.
# ---------------------------------------------------------------------------

_POWER9 = CpuSpec(
    name="IBM POWER9 (2 sockets)",
    core_count=32,
    clock_hz=3.8e9,
    memory_bandwidth_bytes=110 * GB,
    memory_capacity_bytes=256 * GIB,
)

_EPYC = CpuSpec(
    name="AMD EPYC 7742",
    core_count=64,
    clock_hz=2.25e9,
    memory_bandwidth_bytes=190 * GB,
    memory_capacity_bytes=512 * GIB,
)

_GRACE = CpuSpec(
    name="NVIDIA Grace",
    core_count=72,
    clock_hz=3.1e9,
    memory_bandwidth_bytes=384 * GB,
    memory_capacity_bytes=480 * GIB,
)


# ---------------------------------------------------------------------------
# Machine presets.
# ---------------------------------------------------------------------------

#: The paper's primary testbed (Section 3.2): POWER9 + V100 over NVLink 2.0
#: with 1 GiB huge pages.
V100_NVLINK2 = SystemSpec(
    name="POWER9 + V100 / NVLink 2.0",
    cpu=_POWER9,
    gpu=_V100_GPU,
    interconnect=NVLINK2,
    huge_page_bytes=1 * GIB,
)

#: The paper's secondary testbed (Section 5.2.3): A100 over PCIe 4.0.
A100_PCIE4 = SystemSpec(
    name="EPYC + A100 / PCI-e 4.0",
    cpu=_EPYC,
    gpu=_A100_GPU,
    interconnect=PCIE4,
    huge_page_bytes=1 * GIB,
)

#: A GH200-class what-if machine (Table 1's last row; used by the
#: extrapolation ablation, not by any paper figure).
GH200_C2C = SystemSpec(
    name="GH200 / NVLink C2C",
    cpu=_GRACE,
    gpu=_H200_GPU,
    interconnect=NVLINK_C2C,
    huge_page_bytes=1 * GIB,
)

#: An MI250X-class machine (Table 1's Infinity Fabric row).
MI250X_IF3 = SystemSpec(
    name="EPYC + MI250X / Infinity Fabric 3",
    cpu=_EPYC,
    gpu=_MI250X_GPU,
    interconnect=INFINITY_FABRIC3,
    huge_page_bytes=1 * GIB,
)
