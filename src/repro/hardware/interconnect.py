"""Interconnect transfer-time model.

Fast interconnects let the GPU fetch CPU memory at cacheline granularity
(Section 2.1: "the GPU fetches a cacheline across the interconnect"), and
they sustain a large fraction of peak bandwidth even for data-dependent
accesses; PCIe does not (Section 5.2.3).  This module turns byte/access
counts into seconds using the :class:`~repro.hardware.spec.InterconnectSpec`
parameters, distinguishing sequential (table-scan) from random (index
traversal) traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import CACHELINE_BYTES
from .spec import InterconnectSpec


@dataclass(frozen=True)
class InterconnectModel:
    """Cost model of one CPU-to-GPU interconnect link.

    Attributes:
        spec: the static link parameters.
        cacheline_bytes: transfer granularity for random accesses.
    """

    spec: InterconnectSpec
    cacheline_bytes: int = CACHELINE_BYTES

    def __post_init__(self) -> None:
        if self.cacheline_bytes <= 0:
            raise ConfigurationError(
                f"cacheline size must be positive, got {self.cacheline_bytes}"
            )

    # ------------------------------------------------------------------
    # Effective bandwidths.
    # ------------------------------------------------------------------

    @property
    def sequential_bandwidth(self) -> float:
        """Bytes/second for bulk sequential transfers (table scans)."""
        return self.spec.bandwidth_bytes

    @property
    def random_bandwidth(self) -> float:
        """Bytes/second for data-dependent cacheline fetches.

        A GPU keeps enough fetches in flight to hide individual latencies,
        so random traffic is bandwidth-bound too -- just at a reduced
        efficiency (near peak on NVLink, far below peak on PCIe).
        """
        return self.spec.bandwidth_bytes * self.spec.random_efficiency

    # ------------------------------------------------------------------
    # Transfer times.
    # ------------------------------------------------------------------

    def sequential_time(self, num_bytes: float) -> float:
        """Seconds to stream ``num_bytes`` sequentially."""
        if num_bytes < 0:
            raise ConfigurationError(
                f"byte count must be non-negative, got {num_bytes}"
            )
        if num_bytes == 0:
            return 0.0
        return self.spec.latency_seconds + num_bytes / self.sequential_bandwidth

    def random_time(self, num_accesses: float) -> float:
        """Seconds to service ``num_accesses`` random cacheline fetches."""
        if num_accesses < 0:
            raise ConfigurationError(
                f"access count must be non-negative, got {num_accesses}"
            )
        if num_accesses == 0:
            return 0.0
        bytes_moved = num_accesses * self.cacheline_bytes
        return self.spec.latency_seconds + bytes_moved / self.random_bandwidth

    def random_bytes(self, num_accesses: float) -> float:
        """Bytes moved by ``num_accesses`` random cacheline fetches."""
        if num_accesses < 0:
            raise ConfigurationError(
                f"access count must be non-negative, got {num_accesses}"
            )
        return num_accesses * self.cacheline_bytes

    def translation_time(self, num_requests: float, concurrency: float) -> float:
        """Seconds spent on address-translation round trips.

        A translation request costs ~3 us (Section 3.3.2), but the GPU
        overlaps outstanding requests up to the MMU's concurrency limit.
        ``concurrency`` is the effective number of requests in flight
        (:class:`repro.perf.model.CostModel` derives it from the GPU spec).
        """
        if num_requests < 0:
            raise ConfigurationError(
                f"request count must be non-negative, got {num_requests}"
            )
        if concurrency <= 0:
            raise ConfigurationError(
                f"concurrency must be positive, got {concurrency}"
            )
        if num_requests == 0:
            return 0.0
        return num_requests * self.spec.translation_latency_seconds / concurrency
