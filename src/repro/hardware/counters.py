"""Performance counters collected by the simulator.

The paper measures GPU address-translation requests through POWER9 hardware
counters (Section 3.3.2).  Our simulator counts the same events directly,
plus the cache/interconnect events the cost model needs.  A
:class:`PerfCounters` instance is a plain accumulator: simulation components
add to it; the cost model (:mod:`repro.perf.model`) turns it into seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..errors import SimulationError


@dataclass
class PerfCounters:
    """Event counts accumulated during a simulated query.

    All counts refer to the *full* workload: components that simulate a
    sample multiply by the configured scale factor before accumulating
    (see :meth:`scaled`).

    Attributes:
        lookups: index lookups performed (== probe-side tuples processed).
        memory_accesses: memory instructions issued by index traversals.
        l1_hits / l2_hits: accesses absorbed by the GPU L1 / L2 caches.
        remote_accesses: accesses that reached the interconnect.
        remote_bytes: bytes fetched across the interconnect (cacheline
            granularity), including table-scan traffic.
        scan_bytes: bytes moved by sequential bulk transfers (table scans,
            window reads); a subset of remote_bytes.
        tlb_misses: last-level GPU TLB misses.
        tlb_cold_misses: first-touch subset of tlb_misses (a one-off cost
            of the fixed page universe; sampled simulations must not scale
            it with the lookup count).
        translation_requests: address-translation requests sent to the CPU
            IOMMU (misses x replay factor) -- the paper's Fig. 4/6 metric.
        gpu_memory_accesses: random accesses to GPU device memory (hash
            table probes, partition scatters).
        gpu_memory_bytes: bytes moved within GPU device memory.
        simt_instructions: warp-instructions executed (SIMT model).
        divergence_replays: extra warp-instruction replays caused by
            divergent lanes.
        result_bytes: bytes of join result materialized into GPU memory.
    """

    lookups: float = 0.0
    memory_accesses: float = 0.0
    l1_hits: float = 0.0
    l2_hits: float = 0.0
    remote_accesses: float = 0.0
    remote_bytes: float = 0.0
    scan_bytes: float = 0.0
    tlb_misses: float = 0.0
    tlb_cold_misses: float = 0.0
    translation_requests: float = 0.0
    gpu_memory_accesses: float = 0.0
    gpu_memory_bytes: float = 0.0
    simt_instructions: float = 0.0
    divergence_replays: float = 0.0
    result_bytes: float = 0.0

    def add(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate ``other`` into ``self`` (in place) and return self."""
        for field in fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        result = PerfCounters()
        result.add(self)
        result.add(other)
        return result

    def scaled(self, factor: float) -> "PerfCounters":
        """Return a copy with every counter multiplied by ``factor``.

        Used to extrapolate sampled simulation to the full probe relation.
        """
        if factor < 0:
            raise SimulationError(f"scale factor must be non-negative: {factor}")
        result = PerfCounters()
        for field in fields(self):
            setattr(result, field.name, getattr(self, field.name) * factor)
        return result

    def as_dict(self) -> dict:
        """Counters as a plain dict, e.g. for tabular reports."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    # ------------------------------------------------------------------
    # Derived metrics used by the paper's figures.
    # ------------------------------------------------------------------

    @property
    def translation_requests_per_lookup(self) -> float:
        """The y-axis of the paper's Fig. 4."""
        if self.lookups == 0:
            return 0.0
        return self.translation_requests / self.lookups

    @property
    def l2_hit_rate(self) -> float:
        """Fraction of post-L1 accesses absorbed by the L2."""
        post_l1 = self.memory_accesses - self.l1_hits
        if post_l1 <= 0:
            return 0.0
        return self.l2_hits / post_l1

    @property
    def l1_hit_rate(self) -> float:
        """Fraction of memory accesses absorbed by the L1."""
        if self.memory_accesses <= 0:
            return 0.0
        return self.l1_hits / self.memory_accesses

    def validate(self) -> None:
        """Check internal consistency; raises :class:`SimulationError`.

        The hierarchy must conserve accesses: hits plus remote accesses
        cannot exceed issued accesses, and no counter may be negative.
        """
        for field in fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise SimulationError(f"counter {field.name} is negative: {value}")
        absorbed = self.l1_hits + self.l2_hits + self.remote_accesses
        # Allow a small float tolerance: counters are scaled floats.
        if absorbed > self.memory_accesses * (1.0 + 1e-9) + 1e-6:
            raise SimulationError(
                "cache hits + remote accesses exceed issued accesses: "
                f"{absorbed} > {self.memory_accesses}"
            )
        if self.tlb_misses > self.remote_accesses * (1.0 + 1e-9) + 1e-6:
            raise SimulationError(
                "TLB misses exceed remote accesses: "
                f"{self.tlb_misses} > {self.remote_accesses}"
            )
