"""CUDA-stream overlap scheduling.

Windowed partitioning runs a pipeline of kernels per window: read/partition
the window, then probe the index (Section 5.1).  "If kernels were to run
consecutively, the interconnect would be underutilized.  Therefore, we
achieve transfer-compute overlap by permitting the GPU to execute two CUDA
streams simultaneously."

This module computes pipeline makespans for the two policies:

* serial -- one stream, stages run back to back;
* overlapped -- two streams, window ``i+1``'s partition stage runs
  concurrently with window ``i``'s probe stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class StageTiming:
    """Durations of one window's pipeline stages, in seconds.

    Attributes:
        partition: window ingest + radix partition kernel time.
        probe: INLJ probe kernel time (index traversal + result write).
        launch_overhead: fixed per-window kernel launch cost, paid once per
            stage.
    """

    partition: float
    probe: float
    launch_overhead: float = 0.0

    def __post_init__(self) -> None:
        for name in ("partition", "probe", "launch_overhead"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative: {value}")


def serial_pipeline_time(windows: Sequence[StageTiming]) -> float:
    """Makespan with a single stream: every stage strictly in order."""
    total = 0.0
    for window in windows:
        total += window.partition + window.probe + 2 * window.launch_overhead
    return total


def overlapped_pipeline_time(windows: Sequence[StageTiming]) -> float:
    """Makespan with two streams overlapping partition and probe stages.

    Classic two-stage pipeline: the probe of window ``i`` and the partition
    of window ``i+1`` execute concurrently.  Stage ``probe[i]`` can start
    only when both ``partition[i]`` and ``probe[i-1]`` are done:

        ready_partition[i] = ready_partition[i-1] + partition[i]
        ready_probe[i]     = max(ready_partition[i], ready_probe[i-1]) + probe[i]

    The makespan is the last probe's completion.  Both stages contend for
    the same hardware only through their modeled durations; the cost model
    charges shared-resource conflicts (e.g. interconnect) before this point.
    """
    partition_done = 0.0
    probe_done = 0.0
    for window in windows:
        partition_done = partition_done + window.partition + window.launch_overhead
        probe_done = (
            max(partition_done, probe_done) + window.probe + window.launch_overhead
        )
    return probe_done


def uniform_windows(
    num_windows: int,
    partition_seconds: float,
    probe_seconds: float,
    launch_overhead: float = 0.0,
) -> list:
    """Identical stage timings for ``num_windows`` windows.

    Probe streams are uniform in the paper's workloads (fixed window size,
    uniform keys), so experiments mostly schedule homogeneous windows; the
    last, possibly short window is the caller's responsibility.
    """
    if num_windows < 0:
        raise ConfigurationError(
            f"window count must be non-negative, got {num_windows}"
        )
    timing = StageTiming(
        partition=partition_seconds,
        probe=probe_seconds,
        launch_overhead=launch_overhead,
    )
    return [timing] * num_windows
