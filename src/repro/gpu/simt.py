"""SIMT execution accounting: warps, sub-warps, and divergence.

On NVIDIA GPUs a *warp* of 32 threads executes in lockstep (Section 2.2).
When threads of one warp take different numbers of traversal steps -- the
"filter divergence" of a selective join (Section 3.3.1) -- the warp runs for
the longest lane, and shorter lanes idle.  Harmonia avoids some of this by
rescheduling threads into *sub-warps* that cooperate on one lookup at a time.

This module converts per-lookup step counts into warp-instruction counts,
which the cost model prices against the GPU clock.  It is deliberately a
counting model: instruction *mix* is summarized by a steps->instructions
multiplier owned by :mod:`repro.perf.model`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SimtCost:
    """Result of a SIMT accounting pass.

    Attributes:
        warp_instructions: warp-level instructions executed (each costs one
            issue slot regardless of how many lanes are active).
        divergence_replays: extra instructions caused by divergence,
            i.e. ``warp_instructions`` minus the ideal
            ``sum(steps) / warp_size``.
        active_lane_fraction: mean fraction of lanes doing useful work.
    """

    warp_instructions: float
    divergence_replays: float
    active_lane_fraction: float


def warps_needed(num_threads: int, warp_size: int) -> int:
    """Number of warps covering ``num_threads`` threads."""
    if num_threads < 0:
        raise ConfigurationError(
            f"thread count must be non-negative, got {num_threads}"
        )
    if warp_size <= 0:
        raise ConfigurationError(f"warp size must be positive, got {warp_size}")
    return -(-num_threads // warp_size)


def divergent_cost(steps_per_lookup: np.ndarray, warp_size: int) -> SimtCost:
    """Warp-instruction cost of one-thread-per-lookup execution.

    Lookups are assigned to warps in order (thread i -> warp i // 32, as the
    INLJ kernel does).  Each warp executes ``max(steps)`` instructions over
    its lanes; lanes that finish early idle, which is exactly the divergence
    the paper's partitioning mitigates (similar traversal paths => similar
    step counts within a warp).
    """
    steps = np.asarray(steps_per_lookup, dtype=np.float64)
    if steps.ndim != 1:
        raise ConfigurationError(f"steps must be one-dimensional, got {steps.ndim}")
    if len(steps) == 0:
        return SimtCost(0.0, 0.0, 1.0)
    if np.any(steps < 0):
        raise ConfigurationError("negative step counts are not meaningful")
    if warp_size <= 0:
        raise ConfigurationError(f"warp size must be positive, got {warp_size}")
    num_warps = warps_needed(len(steps), warp_size)
    padded = np.zeros(num_warps * warp_size, dtype=np.float64)
    padded[: len(steps)] = steps
    by_warp = padded.reshape(num_warps, warp_size)
    per_warp = by_warp.max(axis=1)
    warp_instructions = float(per_warp.sum())
    useful = float(steps.sum())
    ideal = useful / warp_size
    total_slots = warp_instructions * warp_size
    active_fraction = useful / total_slots if total_slots > 0 else 1.0
    return SimtCost(
        warp_instructions=warp_instructions,
        divergence_replays=max(0.0, warp_instructions - ideal),
        active_lane_fraction=active_fraction,
    )


def subwarp_lookup_cost(
    steps_per_lookup: np.ndarray, warp_size: int, subwarp_size: int
) -> SimtCost:
    """Warp-instruction cost of Harmonia-style sub-warp execution.

    A warp is split into ``warp_size / subwarp_size`` sub-warps; each
    sub-warp processes the lookups of its lane group *serially* ("The
    sub-warp progresses unto the next tuple, until each tuple in the initial
    warp has been processed", Section 3.3.1).  Every node visit is one
    cooperative instruction for the whole sub-warp, so the warp cost is the
    maximum over its sub-warps of the *sum* of their lookups' steps -- sums
    concentrate, which is why sub-warps suffer less divergence than
    independent lanes.
    """
    steps = np.asarray(steps_per_lookup, dtype=np.float64)
    if steps.ndim != 1:
        raise ConfigurationError(f"steps must be one-dimensional, got {steps.ndim}")
    if warp_size <= 0 or subwarp_size <= 0:
        raise ConfigurationError(
            f"warp and sub-warp sizes must be positive, got "
            f"{warp_size}/{subwarp_size}"
        )
    if warp_size % subwarp_size != 0:
        raise ConfigurationError(
            f"sub-warp size {subwarp_size} must divide warp size {warp_size}"
        )
    if len(steps) == 0:
        return SimtCost(0.0, 0.0, 1.0)
    if np.any(steps < 0):
        raise ConfigurationError("negative step counts are not meaningful")
    subwarps_per_warp = warp_size // subwarp_size
    num_warps = warps_needed(len(steps), warp_size)
    padded = np.zeros(num_warps * warp_size, dtype=np.float64)
    padded[: len(steps)] = steps
    # Lookups map to warps contiguously; within a warp, lane l belongs to
    # sub-warp l // subwarp_size, and that sub-warp serially processes the
    # `subwarp_size` lookups of its lane group.
    by_group = padded.reshape(num_warps, subwarps_per_warp, subwarp_size)
    per_subwarp = by_group.sum(axis=2)
    per_warp = per_subwarp.max(axis=1)
    warp_instructions = float(per_warp.sum())
    useful = float(steps.sum())
    ideal = useful / subwarps_per_warp
    active_fraction = useful / (warp_instructions * subwarps_per_warp) if (
        warp_instructions > 0
    ) else 1.0
    return SimtCost(
        warp_instructions=warp_instructions,
        divergence_replays=max(0.0, warp_instructions - ideal),
        active_lane_fraction=active_fraction,
    )
