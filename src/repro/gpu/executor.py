"""The machine facade: replaying index traversals against the hierarchy.

Index traversals produce a :class:`LookupTrace` -- a step-by-step matrix of
byte addresses, one column per lookup.  :class:`MachineModel` replays the
trace the way the GPU would execute it: accesses from concurrently resident
threads interleave round-robin (step-major within waves of
``interleave_width`` lookups), flow through the L1 and L2 caches, and --
when they miss to the interconnect -- through the GPU TLB.  This
interleaving is what makes the paper's TLB thrashing emergent: by the time
a thread issues its next traversal step, thousands of other threads'
accesses have aged its translation out of the LRU (Section 4.1).

The model distinguishes two probe-stream orders:

* random order (the naive INLJ of Section 3): the event-level TLB sim is
  faithful, because random accesses carry no locality a sample could lose;
* partition order (Sections 4-5): samples cannot preserve sweep locality at
  page granularity, so join operators compute TLB misses analytically
  (:mod:`repro.perf.analytic`) and disable the event TLB here.

All methods return *raw, unscaled* counters for the simulated sample;
callers scale by ``SimulationConfig.scale_factor`` and sum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import obs
from ..config import DEFAULT_CONFIG, SimulationConfig
from ..errors import ConfigurationError, SimulationError
from ..hardware.cache import LruCache, SetAssociativeCache
from ..hardware.counters import PerfCounters
from ..hardware.fastlru import (
    VectorLruCache,
    VectorLruTlb,
    VectorSetAssociativeCache,
)
from ..hardware.memory import SystemMemory
from ..hardware.spec import SystemSpec
from ..hardware.tlb import LruTlb


class AccessKind(enum.Enum):
    """Which memory an access targets."""

    HOST = "host"
    DEVICE = "device"


@dataclass
class LookupTrace:
    """Memory accesses of a batch of index lookups.

    Attributes:
        step_addresses: int64 matrix of shape (num_steps, num_lookups);
            entry (s, i) is the byte address lookup ``i`` touches at
            traversal step ``s``, or -1 if the lookup finished earlier.
        steps_per_lookup: number of active steps per lookup (int array),
            consumed by the SIMT cost model.
    """

    step_addresses: np.ndarray
    steps_per_lookup: np.ndarray

    def __post_init__(self) -> None:
        if self.step_addresses.ndim != 2:
            raise SimulationError(
                "step_addresses must be (steps, lookups), got shape "
                f"{self.step_addresses.shape}"
            )
        if len(self.steps_per_lookup) != self.step_addresses.shape[1]:
            raise SimulationError(
                "steps_per_lookup length must match the lookup count: "
                f"{len(self.steps_per_lookup)} != {self.step_addresses.shape[1]}"
            )

    @property
    def num_lookups(self) -> int:
        return self.step_addresses.shape[1]

    @property
    def num_steps(self) -> int:
        return self.step_addresses.shape[0]

    @property
    def total_accesses(self) -> int:
        return int(np.count_nonzero(self.step_addresses >= 0))


class MachineModel:
    """One simulated machine instance: memory spaces plus cache/TLB state.

    A MachineModel's hierarchy state persists across calls so that a query
    composed of several simulation phases (e.g. one call per window) warms
    caches realistically; :meth:`reset_hierarchy` starts a fresh query.
    """

    def __init__(
        self, spec: SystemSpec, sim: SimulationConfig = DEFAULT_CONFIG
    ):
        self.spec = spec
        self.sim = sim
        self.memory = SystemMemory(spec)
        gpu = spec.gpu
        if sim.fast_replay:
            self.l1 = VectorLruCache(gpu.l1_bytes, gpu.cacheline_bytes)
            self.l2 = VectorSetAssociativeCache(
                gpu.l2_bytes, gpu.cacheline_bytes, ways=16
            )
            self.tlb = VectorLruTlb(spec.tlb_entries)
        else:
            self.l1 = LruCache(gpu.l1_bytes, gpu.cacheline_bytes)
            self.l2 = SetAssociativeCache(
                gpu.l2_bytes, gpu.cacheline_bytes, ways=16
            )
            self.tlb = LruTlb(spec.tlb_entries)
        # Name the hierarchy levels for observability: a named model emits
        # ``model.<name>.*`` counters from its batch entry points.  The
        # VectorLruTlb's inner VectorLruCache stays unnamed on purpose --
        # naming it would double-count every TLB access.
        self.l1.obs_name = "l1"
        self.l2.obs_name = "l2"
        self.tlb.obs_name = "tlb"
        if gpu.cacheline_bytes & (gpu.cacheline_bytes - 1) != 0:
            raise ConfigurationError(
                f"cacheline size must be a power of two, got {gpu.cacheline_bytes}"
            )
        if gpu.tlb_entry_bytes & (gpu.tlb_entry_bytes - 1) != 0:
            raise ConfigurationError(
                f"TLB entry granule must be a power of two, got "
                f"{gpu.tlb_entry_bytes}"
            )
        self._line_shift = gpu.cacheline_bytes.bit_length() - 1
        self._page_shift = gpu.tlb_entry_bytes.bit_length() - 1

    def reset_hierarchy(self) -> None:
        """Clear cache and TLB state (start of a new query)."""
        self.l1.reset()
        self.l2.reset()
        self.tlb.reset()

    # ------------------------------------------------------------------
    # Event-level simulation.
    # ------------------------------------------------------------------

    def coalesced_lines(
        self, trace: LookupTrace, interleave_width: Optional[int] = None
    ) -> tuple:
        """Flatten a trace into GPU transaction order with warp coalescing.

        Waves of ``interleave_width`` lookups run concurrently; within a
        wave, step s of every lookup precedes step s+1 of any lookup
        (round-robin).  Lanes of one warp (32 consecutive lookups) that
        touch the same cacheline in the same step *coalesce* into a single
        memory transaction -- the mechanism that makes partition-ordered
        lookups cheap (Section 4.1 cites Harmonia's coalesced accesses
        after sorting).  Inactive entries (-1) are dropped.

        Returns ``(lines, issued)``: the cacheline-id transaction stream
        and the number of lane-level accesses it represents.
        """
        width = interleave_width or self.sim.interleave_width
        if width <= 0:
            raise ConfigurationError(
                f"interleave width must be positive, got {width}"
            )
        warp = self.spec.gpu.warp_size
        matrix = trace.step_addresses
        num_lookups = trace.num_lookups
        issued = 0
        parts = []
        for start in range(0, num_lookups, width):
            block = matrix[:, start : start + width]
            steps, wave_width = block.shape
            padded_width = -(-wave_width // warp) * warp
            active = block >= 0
            issued += int(np.count_nonzero(active))
            lines = np.where(active, block >> self._line_shift, np.int64(-1))
            if padded_width != wave_width:
                # Pad the whole wave once, not once per step.
                padded = np.full((steps, padded_width), -1, dtype=np.int64)
                padded[:, :wave_width] = lines
                lines = padded
            # Sort each warp's lanes per step; a lane whose line equals its
            # sorted predecessor coalesces away.  Boolean extraction walks
            # the array in C order -- (step, warp, lane) -- which is exactly
            # the per-step append order of the reference loop.
            by_warp = np.sort(lines.reshape(steps, -1, warp), axis=2)
            first = np.ones_like(by_warp, dtype=bool)
            first[:, :, 1:] = by_warp[:, :, 1:] != by_warp[:, :, :-1]
            first &= by_warp >= 0
            parts.append(by_warp[first])
        if not parts:
            return np.empty(0, dtype=np.int64), issued
        return np.concatenate(parts), issued

    def simulate_lookups(
        self,
        trace: LookupTrace,
        simulate_tlb: bool = True,
        interleave_width: Optional[int] = None,
        shuffle: bool = False,
    ) -> PerfCounters:
        """Replay a trace: warp coalescing -> L2 -> interconnect (-> TLB).

        Coalesced lane accesses count as ``l1_hits`` (they are satisfied
        within the SM, like the L1 hits the paper discusses); surviving
        transactions go through the L2, and L2 misses go remote.  Returns
        raw counters for the trace.  ``simulate_tlb=False`` skips the event
        TLB (partition-ordered streams account for the TLB analytically;
        see module docstring) -- remote accesses are still counted.

        ``shuffle=True`` randomizes transaction order after coalescing.
        Use it for random-order (naive) probes: real warps progress at
        independent rates, so the TLB sees a mix of all traversal levels
        at once; replaying steps in lockstep would let mid-size levels
        enjoy artificial within-step TLB residency.

        When tracing is on (:mod:`repro.obs`), each call emits one
        ``replay.simulate`` span plus ``replay.*`` counters sourced from
        the very :class:`PerfCounters` returned -- so traced counters are
        exact for the fast and reference replay engines alike.
        """
        if not obs.enabled():
            return self._replay(trace, simulate_tlb, interleave_width, shuffle)
        with obs.span(
            "replay.simulate",
            lookups=trace.num_lookups,
            event_tlb=simulate_tlb,
        ):
            counters = self._replay(
                trace, simulate_tlb, interleave_width, shuffle
            )
        obs.add("replay.batches")
        obs.add_perf_counters("replay", counters)
        return counters

    def _replay(
        self,
        trace: LookupTrace,
        simulate_tlb: bool,
        interleave_width: Optional[int],
        shuffle: bool,
    ) -> PerfCounters:
        stream, issued = self.coalesced_lines(trace, interleave_width)
        if shuffle and len(stream) > 0:
            rng = np.random.default_rng(self.sim.seed ^ 0x5A)
            stream = rng.permutation(stream)
        counters = PerfCounters()
        counters.lookups = float(trace.num_lookups)
        counters.memory_accesses = float(issued)
        if len(stream) == 0:
            return counters
        page_line_shift = self._page_shift - self._line_shift
        l2 = self.l2
        tlb = self.tlb
        tlb_misses = 0
        cold_before = self.tlb.cold_misses
        if isinstance(l2, VectorSetAssociativeCache):
            # Fast path: whole-stream batch replay, no per-line Python loop.
            l2_hit_mask = l2.access_batch(stream)
            l2_hits = int(np.count_nonzero(l2_hit_mask))
            remote = len(stream) - l2_hits
            if simulate_tlb and remote:
                pages = stream[~l2_hit_mask] >> page_line_shift
                tlb_hit_mask = tlb.access_batch(pages)
                tlb_misses = remote - int(np.count_nonzero(tlb_hit_mask))
        else:
            l2_hits = 0
            remote = 0
            for line in stream.tolist():
                if l2.access(line):
                    l2_hits += 1
                    continue
                remote += 1
                if simulate_tlb and not tlb.access(line >> page_line_shift):
                    tlb_misses += 1
        counters.l1_hits = float(issued - len(stream))
        counters.l2_hits = float(l2_hits)
        counters.remote_accesses = float(remote)
        counters.remote_bytes = float(remote * self.spec.gpu.cacheline_bytes)
        counters.tlb_misses = float(tlb_misses)
        counters.tlb_cold_misses = float(self.tlb.cold_misses - cold_before)
        counters.translation_requests = (
            tlb_misses * self.spec.gpu.tlb_replay_factor
        )
        return counters

    def scale_lookup_counters(
        self,
        raw: PerfCounters,
        target_lookups: float,
        replay_factor: Optional[float] = None,
    ) -> PerfCounters:
        """Extrapolate a sampled lookup simulation to ``target_lookups``.

        Everything scales linearly with the lookup count except cold
        (first-touch) TLB misses: the page universe is fixed, so those are
        a one-off cost of the whole query, not of each sampled lookup.
        Capacity misses -- the thrashing signal -- scale linearly.

        ``replay_factor`` overrides the GPU default: divergent warps
        replay translations per distinct page their lanes touch, so the
        factor depends on the index's traversal style (see
        ``Index.tlb_replay_factor``).
        """
        if raw.lookups <= 0:
            raise SimulationError("raw counters contain no lookups to scale")
        if target_lookups < raw.lookups:
            raise SimulationError(
                f"target {target_lookups} is smaller than the sample "
                f"{raw.lookups}"
            )
        if replay_factor is None:
            replay_factor = self.spec.gpu.tlb_replay_factor
        scale = target_lookups / raw.lookups
        scaled = raw.scaled(scale)
        steady_misses = max(0.0, raw.tlb_misses - raw.tlb_cold_misses)
        scaled.tlb_misses = steady_misses * scale + raw.tlb_cold_misses
        scaled.tlb_cold_misses = raw.tlb_cold_misses
        scaled.translation_requests = scaled.tlb_misses * replay_factor
        return scaled

    # ------------------------------------------------------------------
    # Bulk-traffic counter builders (no event simulation needed).
    # ------------------------------------------------------------------

    def scan_counters(self, num_bytes: float) -> PerfCounters:
        """Sequential bulk read from host memory over the interconnect.

        Table scans and window ingests use streaming transfers that the
        paper's baseline relies on; they prefetch linearly, so the TLB is
        not stressed ("its table scan is not subject to frequent TLB
        misses", Section 4.3.1).
        """
        if num_bytes < 0:
            raise SimulationError(f"scan bytes must be non-negative: {num_bytes}")
        counters = PerfCounters()
        counters.scan_bytes = float(num_bytes)
        counters.remote_bytes = float(num_bytes)
        return counters

    def gpu_random_counters(
        self, num_accesses: float, bytes_per_access: float = 32.0
    ) -> PerfCounters:
        """Random accesses to GPU device memory (hash probes, scatters).

        GPU memory transacts in 32-byte sectors; a random 8-16 byte touch
        still moves one sector.
        """
        if num_accesses < 0:
            raise SimulationError(
                f"access count must be non-negative: {num_accesses}"
            )
        counters = PerfCounters()
        counters.gpu_memory_accesses = float(num_accesses)
        counters.gpu_memory_bytes = float(num_accesses * bytes_per_access)
        return counters

    def gpu_bulk_counters(self, num_bytes: float) -> PerfCounters:
        """Sequential traffic within GPU device memory (partition passes)."""
        if num_bytes < 0:
            raise SimulationError(f"bulk bytes must be non-negative: {num_bytes}")
        counters = PerfCounters()
        counters.gpu_memory_bytes = float(num_bytes)
        return counters

    def result_counters(self, num_bytes: float) -> PerfCounters:
        """Join-result materialization into GPU memory (Section 3.2)."""
        if num_bytes < 0:
            raise SimulationError(f"result bytes must be non-negative: {num_bytes}")
        counters = PerfCounters()
        counters.result_bytes = float(num_bytes)
        counters.gpu_memory_bytes = float(num_bytes)
        return counters

    def analytic_tlb_counters(
        self, misses: float, replay_factor: Optional[float] = None
    ) -> PerfCounters:
        """Wrap an analytically computed TLB miss count in counters."""
        if misses < 0:
            raise SimulationError(f"miss count must be non-negative: {misses}")
        if replay_factor is None:
            replay_factor = self.spec.gpu.tlb_replay_factor
        counters = PerfCounters()
        counters.tlb_misses = float(misses)
        counters.translation_requests = misses * replay_factor
        return counters
