"""GPU execution model: SIMT accounting, streams, and the machine facade.

The INLJ "dispatches a thread for each tuple of the probe side relation"
(Section 3.3.1); Harmonia reschedules threads into sub-warps; windowed
partitioning overlaps two CUDA streams (Section 5.1).  This package models
those execution-side behaviours; the memory side lives in
:mod:`repro.hardware`.
"""

from .simt import SimtCost, divergent_cost, subwarp_lookup_cost, warps_needed
from .streams import StageTiming, overlapped_pipeline_time, serial_pipeline_time
from .executor import AccessKind, LookupTrace, MachineModel

__all__ = [
    "SimtCost",
    "divergent_cost",
    "subwarp_lookup_cost",
    "warps_needed",
    "StageTiming",
    "overlapped_pipeline_time",
    "serial_pipeline_time",
    "AccessKind",
    "LookupTrace",
    "MachineModel",
]
