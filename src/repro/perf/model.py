"""Cost model: performance counters -> query time on a machine.

The model is a per-stage roofline.  A kernel's duration is the maximum of
the resources it keeps busy -- interconnect traffic, GPU memory traffic,
and SIMT issue slots -- plus the part of the TLB translation stall the GPU
cannot hide (translation requests cost ~3 us each and only a limited
number are outstanding; Section 3.3.2 / Lutz et al. [30]).

Calibration constants are collected in :class:`CalibrationConstants` with
their provenance.  They tune *absolute* numbers; every *shape* the paper
reports (the 32 GiB cliff, the partitioning recovery, the index ranking,
the crossovers) emerges from counters, not from these constants -- tests
in ``tests/perf`` pin that separation down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import ConfigurationError
from ..hardware.counters import PerfCounters
from ..hardware.interconnect import InterconnectModel
from ..hardware.spec import SystemSpec
from ..units import MICROSECOND


@dataclass(frozen=True)
class CalibrationConstants:
    """Tunable absolute-scale constants of the cost model.

    Attributes:
        instructions_per_step: machine instructions per traversal step
            (compare + address arithmetic + branch) priced against SM
            issue bandwidth.
        translation_concurrency: address-translation requests the GPU MMU
            keeps in flight; the 3 us round-trips overlap up to this
            factor.  Calibrated jointly with the replay factors against
            the paper's worst-case naive-INLJ throughput drop ("up to
            16.7x", Section 6) and the requirement that no naive INLJ
            outperforms the hash join at 111 GiB (Fig. 3).
        kernel_launch_seconds: fixed cost per kernel launch; bounds how
            small a partitioning window can usefully be (Fig. 7).
        gpu_sector_bytes: granularity of a random GPU-memory transaction.
        hash_probe_accesses: expected device-memory accesses per hash-table
            probe at 50% load factor (bucket fetch + value fetch).
        hash_build_accesses: expected device-memory accesses per inserted
            build key.
        partition_passes: device-memory passes of the radix partitioner
            (histogram + scatter; the SWWC partitioner of Stehle &
            Jacobsen [46] is two-pass).
    """

    instructions_per_step: float = 10.0
    translation_concurrency: float = 600.0
    kernel_launch_seconds: float = 10.0 * MICROSECOND
    gpu_sector_bytes: float = 32.0
    hash_probe_accesses: float = 4.0
    hash_build_accesses: float = 2.5
    partition_passes: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "instructions_per_step",
            "translation_concurrency",
            "kernel_launch_seconds",
            "gpu_sector_bytes",
            "hash_probe_accesses",
            "hash_build_accesses",
            "partition_passes",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )


DEFAULT_CALIBRATION = CalibrationConstants()


@dataclass
class QueryCost:
    """A priced query: total seconds plus a component breakdown."""

    seconds: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    counters: PerfCounters = field(default_factory=PerfCounters)

    @property
    def queries_per_second(self) -> float:
        """The paper's throughput metric (Q/s)."""
        if self.seconds <= 0:
            return float("inf")
        return 1.0 / self.seconds


class CostModel:
    """Prices counters into seconds for one machine."""

    def __init__(
        self,
        spec: SystemSpec,
        constants: CalibrationConstants = DEFAULT_CALIBRATION,
    ):
        self.spec = spec
        self.constants = constants
        self.interconnect = InterconnectModel(
            spec.interconnect, cacheline_bytes=spec.gpu.cacheline_bytes
        )

    # ------------------------------------------------------------------
    # Resource times.
    # ------------------------------------------------------------------

    def scan_time(self, num_bytes: float) -> float:
        """Sequential host->GPU transfer, bounded by CPU memory bandwidth.

        "CPU memory bandwidth becomes the limiting factor" for table scans
        over a fast interconnect (Section 1).
        """
        if num_bytes <= 0:
            return 0.0
        effective = min(
            self.interconnect.sequential_bandwidth,
            self.spec.cpu.memory_bandwidth_bytes,
        )
        return self.spec.interconnect.latency_seconds + num_bytes / effective

    def remote_random_time(self, num_accesses: float) -> float:
        """Data-dependent cacheline fetches from host memory."""
        return self.interconnect.random_time(num_accesses)

    def gpu_memory_time(self, num_bytes: float, random: bool = False) -> float:
        """Device-memory traffic (bulk or random-sector)."""
        if num_bytes <= 0:
            return 0.0
        bandwidth = self.spec.gpu.memory_bandwidth_bytes
        if random:
            bandwidth *= self.spec.gpu.memory_random_efficiency
        return num_bytes / bandwidth

    def compute_time(self, warp_instructions: float) -> float:
        """SIMT issue time: each SM issues one warp instruction per cycle."""
        if warp_instructions <= 0:
            return 0.0
        issue_rate = self.spec.gpu.sm_count * self.spec.gpu.clock_hz
        return (
            warp_instructions
            * self.constants.instructions_per_step
            / issue_rate
        )

    def translation_stall_time(self, num_requests: float) -> float:
        """Unhidden part of address-translation round trips."""
        return self.interconnect.translation_time(
            num_requests, self.constants.translation_concurrency
        )

    # ------------------------------------------------------------------
    # Stage pricing.
    # ------------------------------------------------------------------

    def probe_stage_time(self, counters: PerfCounters) -> float:
        """Duration of an index-probe kernel described by ``counters``.

        Roofline over the interconnect (random fetches + any scan share),
        GPU memory, and SIMT compute; the TLB stall adds on top because a
        translation blocks the very accesses that would otherwise overlap.
        """
        random_accesses = counters.remote_accesses
        scan_bytes = counters.scan_bytes
        interconnect_time = self.remote_random_time(random_accesses)
        if scan_bytes > 0:
            interconnect_time += self.scan_time(scan_bytes)
        gpu_random_bytes = (
            counters.gpu_memory_accesses * self.constants.gpu_sector_bytes
        )
        gpu_bulk_bytes = max(
            0.0, counters.gpu_memory_bytes - gpu_random_bytes
        )
        gpu_time = self.gpu_memory_time(
            gpu_random_bytes, random=True
        ) + self.gpu_memory_time(gpu_bulk_bytes, random=False)
        compute = self.compute_time(counters.simt_instructions)
        stall = self.translation_stall_time(counters.translation_requests)
        return max(interconnect_time, gpu_time, compute) + stall

    def price(self, counters: PerfCounters, stages: int = 1) -> QueryCost:
        """Price a whole query executed as ``stages`` serial kernels."""
        seconds = self.probe_stage_time(counters)
        seconds += stages * self.constants.kernel_launch_seconds
        breakdown = self.breakdown(counters)
        breakdown["launch"] = stages * self.constants.kernel_launch_seconds
        return QueryCost(seconds=seconds, breakdown=breakdown, counters=counters)

    def price_stages(self, stages) -> QueryCost:
        """Price serial pipeline stages: ``stages`` is [(label, counters)].

        Each stage is an independent kernel (its own roofline + one launch);
        stage times add up.  Operators that overlap stages across CUDA
        streams (windowed partitioning) compute their own makespan instead.
        """
        total_counters = PerfCounters()
        breakdown: Dict[str, float] = {}
        seconds = 0.0
        for label, counters in stages:
            stage_seconds = (
                self.probe_stage_time(counters)
                + self.constants.kernel_launch_seconds
            )
            breakdown[label] = stage_seconds
            seconds += stage_seconds
            total_counters.add(counters)
        return QueryCost(
            seconds=seconds, breakdown=breakdown, counters=total_counters
        )

    def breakdown(self, counters: PerfCounters) -> Dict[str, float]:
        """Component times (not additive: the roofline takes a max)."""
        gpu_random_bytes = (
            counters.gpu_memory_accesses * self.constants.gpu_sector_bytes
        )
        gpu_bulk_bytes = max(0.0, counters.gpu_memory_bytes - gpu_random_bytes)
        return {
            "interconnect_random": self.remote_random_time(
                counters.remote_accesses
            ),
            "interconnect_scan": self.scan_time(counters.scan_bytes),
            "gpu_memory": self.gpu_memory_time(gpu_random_bytes, random=True)
            + self.gpu_memory_time(gpu_bulk_bytes),
            "compute": self.compute_time(counters.simt_instructions),
            "translation_stall": self.translation_stall_time(
                counters.translation_requests
            ),
        }
