"""Closed-form locality formulas for partition-ordered index lookups.

Event-level simulation replays a *sample* of lookups; that is faithful for
random-order streams (random accesses have no locality a sample could lose)
but not for partition-ordered streams, whose benefit is precisely the
locality between *adjacent* lookups (Section 4.2).  A sampled, partition-
ordered stream is too sparse: sampled neighbours are thousands of keys
apart, so page reuse that the real stream enjoys disappears.

Instead, partitioned operators compute expected TLB misses analytically.
The core quantity: a window of W partition-ordered lookups sweeps each
index-array level once, front to back.  A page is entered at most once per
sweep (the stream never moves backward), so misses per window equal the
number of *distinct* pages touched, which for W uniform positions over P
pages is the classic occupancy expectation ``P * (1 - (1 - 1/P)**W)``.

Binary search needs extra care: its upper traversal steps ("mid tree"
levels) jump across the whole array rather than sweeping, and the GPU L2
absorbs the hottest of them before they can reach the TLB.  See
:func:`midtree_sweep_pages`.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError


def expected_distinct(samples: float, universe: float) -> float:
    """Expected number of distinct values in ``samples`` uniform draws.

    Standard occupancy formula ``U * (1 - (1 - 1/U)**s)``; computed in log
    space to stay stable for the 1e10-scale inputs these models use.
    """
    if samples < 0:
        raise ConfigurationError(f"samples must be non-negative, got {samples}")
    if universe <= 0:
        raise ConfigurationError(f"universe must be positive, got {universe}")
    if samples == 0:
        return 0.0
    if universe == 1:
        return min(1.0, samples)
    # (1 - 1/U)**s == exp(s * log1p(-1/U))
    log_term = samples * math.log1p(-1.0 / universe)
    # Clamp at the draw count: real sampling can never produce more
    # distinct values than draws, but the formula's fractional extension
    # exceeds s for s < 1 (e.g. U=2, s=0.5 gives ~0.586).
    return min(samples, universe * -math.expm1(log_term))


def uniform_lru_misses(
    accesses: float, pages: float, capacity: float
) -> float:
    """Expected LRU misses for uniform random page accesses.

    For independent uniform accesses over ``pages`` pages and an LRU of
    ``capacity`` entries, the steady-state hit probability is
    ``min(1, capacity / pages)``; cold misses add the distinct pages
    touched.  Used as a cross-check against the event simulator (tests
    assert they agree for the naive INLJ).
    """
    if accesses < 0:
        raise ConfigurationError(f"accesses must be non-negative, got {accesses}")
    if pages <= 0 or capacity <= 0:
        raise ConfigurationError(
            f"pages and capacity must be positive, got {pages}/{capacity}"
        )
    if pages <= capacity:
        return min(accesses, pages)
    steady_miss_rate = 1.0 - capacity / pages
    return accesses * steady_miss_rate


def level_sweep_pages(
    window_lookups: float,
    span_bytes: float,
    page_bytes: int,
    accesses_per_lookup: float = 1.0,
) -> float:
    """Distinct pages touched when a window sweeps one array level.

    ``span_bytes`` is the size of the array (an index level, or the data
    column); each lookup touches ``accesses_per_lookup`` nearby positions
    in it.  Nearby positions of one lookup share a page except at page
    boundaries, so the access multiplier only matters when lookups are
    sparse relative to pages.
    """
    if window_lookups < 0:
        raise ConfigurationError(
            f"window_lookups must be non-negative, got {window_lookups}"
        )
    if span_bytes < 0:
        raise ConfigurationError(
            f"span_bytes must be non-negative, got {span_bytes}"
        )
    if page_bytes <= 0:
        raise ConfigurationError(f"page_bytes must be positive, got {page_bytes}")
    if span_bytes == 0 or window_lookups == 0:
        return 0.0
    pages = max(1.0, span_bytes / page_bytes)
    touches = window_lookups * max(1.0, accesses_per_lookup)
    return min(expected_distinct(touches, pages), pages)


def midtree_sweep_pages(
    window_lookups: float,
    span_bytes: float,
    page_bytes: int,
    l2_bytes: int,
    cacheline_bytes: int,
) -> float:
    """Distinct pages reaching the TLB for a binary-search mid tree.

    A binary search over a span of N keys visits, at step d, one of 2**d
    possible "mid" positions.  For a window of W sorted lookups:

    * steps whose cumulative distinct cachelines fit in the L2 are absorbed
      by the cache and never reach the interconnect or the TLB;
    * remaining sparse steps (mid spacing >= one page) touch
      ``min(expected_distinct(W, 2**d), pages)`` distinct pages each;
    * dense steps (mid spacing < one page) jointly sweep the data pages
      once -- they move in lockstep with the final positions -- adding
      ``pages`` in total, not per step.
    """
    if span_bytes <= 0 or window_lookups <= 0:
        return 0.0
    if page_bytes <= 0 or l2_bytes <= 0 or cacheline_bytes <= 0:
        raise ConfigurationError(
            "page_bytes, l2_bytes, and cacheline_bytes must be positive"
        )
    pages = max(1.0, span_bytes / page_bytes)
    total_steps = max(1, math.ceil(math.log2(max(2.0, span_bytes / 8))))
    l2_lines = l2_bytes / cacheline_bytes
    # Steps absorbed by the L2: cumulative distinct mid-lines 2^0+..+2^d
    # ~= 2^(d+1) must fit in the L2.
    absorbed_steps = max(0, int(math.log2(max(1.0, l2_lines))) - 1)
    # Steps whose mids are denser than one page sweep jointly.
    dense_threshold = math.log2(max(2.0, span_bytes / page_bytes))
    total = 0.0
    for step in range(absorbed_steps, total_steps):
        if step >= dense_threshold:
            break
        distinct_mids = expected_distinct(window_lookups, float(2**step))
        total += min(distinct_mids, pages)
    total += pages  # the joint dense sweep (includes the final accesses)
    return min(total, total_steps * pages)
