"""Performance modelling: counters -> seconds, plus analytic locality math.

:mod:`repro.perf.analytic` holds closed-form locality formulas (expected
distinct pages of a partition-ordered sweep); :mod:`repro.perf.model` prices
:class:`~repro.hardware.counters.PerfCounters` into query time on a given
:class:`~repro.hardware.spec.SystemSpec`; :mod:`repro.perf.report` formats
results like the paper's figures.
"""

from .analytic import (
    expected_distinct,
    level_sweep_pages,
    midtree_sweep_pages,
    uniform_lru_misses,
)
from .charts import ascii_chart, chart_experiment, sparkline
from .cpu import CpuCostModel
from .export import (
    load_result_json,
    result_to_csv,
    result_to_json,
    result_to_rows,
    write_result,
)
from .model import CostModel, QueryCost
from .report import Series, format_series_table, format_table

__all__ = [
    "expected_distinct",
    "level_sweep_pages",
    "midtree_sweep_pages",
    "uniform_lru_misses",
    "ascii_chart",
    "chart_experiment",
    "sparkline",
    "load_result_json",
    "result_to_csv",
    "result_to_json",
    "result_to_rows",
    "write_result",
    "CostModel",
    "CpuCostModel",
    "QueryCost",
    "Series",
    "format_series_table",
    "format_table",
]
