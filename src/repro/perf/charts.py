"""Plain-text chart rendering for experiment results.

The benchmark harness prints figure-shaped tables; for quick visual
comparison against the paper's plots it also helps to *see* the curves.
This module renders series as terminal charts without any plotting
dependency:

* :func:`sparkline` -- a one-line unicode profile of a series;
* :func:`ascii_chart` -- a multi-series scatter/line chart on a character
  grid, with optional log axes (the paper's figures are log-log).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..errors import ConfigurationError
from .report import Series

#: Eight-level block characters for sparklines.
_BLOCKS = "▁▂▃▄▅▆▇█"

#: Symbols assigned to series, in order.
_MARKERS = "ox+*#@%&"


def sparkline(values: Sequence[float]) -> str:
    """One-line profile of a value sequence, e.g. ``▁▂▄█``."""
    values = list(values)
    if not values:
        return ""
    if any(v < 0 for v in values):
        raise ConfigurationError("sparklines render non-negative values only")
    top = max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    scaled = [
        _BLOCKS[min(len(_BLOCKS) - 1, int(v / top * (len(_BLOCKS) - 1) + 0.5))]
        for v in values
    ]
    return "".join(scaled)


def _transform(value: float, log: bool) -> float:
    if not log:
        return value
    if value <= 0:
        raise ConfigurationError("log axes need positive values")
    return math.log10(value)


def ascii_chart(
    series_list: Sequence[Series],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render series on a character grid.

    Each series gets a marker (``o``, ``x``, ...); overlapping points show
    the later series' marker.  Axis extremes are annotated.  Useful for
    eyeballing the paper's log-log figures in a terminal.
    """
    if not series_list:
        raise ConfigurationError("need at least one series")
    if width < 8 or height < 4:
        raise ConfigurationError("chart must be at least 8x4 characters")
    points = [
        (series_index, x, y)
        for series_index, series in enumerate(series_list)
        for x, y in zip(series.x, series.y)
    ]
    if not points:
        raise ConfigurationError("no points to draw")
    xs = [_transform(x, log_x) for __, x, __ in points]
    ys = [_transform(y, log_y) for __, __, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0
    grid: List[List[str]] = [[" "] * width for __ in range(height)]
    for (series_index, x, y), tx, ty in zip(points, xs, ys):
        column = int((tx - x_low) / x_span * (width - 1))
        row = height - 1 - int((ty - y_low) / y_span * (height - 1))
        grid[row][column] = _MARKERS[series_index % len(_MARKERS)]
    lines = []
    if title:
        lines.append(title)
    raw_y_high = max(y for __, __, y in points)
    raw_y_low = min(y for __, __, y in points)
    top_label = f"{raw_y_high:.3g}"
    bottom_label = f"{raw_y_low:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    raw_x_low = min(x for __, x, __ in points)
    raw_x_high = max(x for __, x, __ in points)
    axis = f"{' ' * label_width} +{'-' * width}"
    lines.append(axis)
    x_annotation = (
        f"{' ' * label_width}  {raw_x_low:.3g}"
        f"{' ' * max(1, width - 16)}{raw_x_high:.3g}"
    )
    lines.append(x_annotation)
    legend = "  ".join(
        f"{_MARKERS[index % len(_MARKERS)]} {series.label}"
        for index, series in enumerate(series_list)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    if y_label:
        lines.append(f"{' ' * label_width}  y: {y_label}"
                     f"{' (log)' if log_y else ''}")
    return "\n".join(lines)


def chart_experiment(
    result, log_x: bool = True, log_y: bool = True, **kwargs
) -> str:
    """Chart an :class:`~repro.experiments.common.ExperimentResult`.

    Series with no points (capacity-skipped) are dropped; log axes default
    on, matching the paper's figures.
    """
    populated = [series for series in result.series if len(series)]
    if not populated:
        raise ConfigurationError(f"{result.name} has no data to chart")
    safe_log_y = log_y and all(
        y > 0 for series in populated for y in series.y
    )
    safe_log_x = log_x and all(
        x > 0 for series in populated for x in series.x
    )
    return ascii_chart(
        populated,
        log_x=safe_log_x,
        log_y=safe_log_y,
        title=f"{result.name}: {result.title}",
        **kwargs,
    )
