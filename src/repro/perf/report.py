"""Result formatting: text renditions of the paper's tables and figures.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import ConfigurationError


@dataclass
class Series:
    """One line of a figure: a label plus (x, y) points."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def append(self, x_value: float, y_value: float) -> None:
        self.x.append(x_value)
        self.y.append(y_value)

    def __len__(self) -> int:
        return len(self.x)

    def as_dict(self) -> Dict[float, float]:
        return dict(zip(self.x, self.y))


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Render a fixed-width text table (used for Table 1 and summaries)."""
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match header width "
                f"{len(headers)}"
            )
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in str_rows:
        lines.append(
            " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series_table(
    series_list: Sequence[Series],
    x_label: str,
    y_format: str = "{:.3f}",
    x_format: str = "{:.3g}",
    title: str = "",
) -> str:
    """Render several series against a shared x axis, one column per series.

    Missing points (a series without that x, e.g. the B+tree past its
    capacity limit -- paper Section 3.2) render as ``-``.
    """
    if not series_list:
        raise ConfigurationError("need at least one series")
    xs: List[float] = []
    for series in series_list:
        for x_value in series.x:
            if x_value not in xs:
                xs.append(x_value)
    xs.sort()
    headers = [x_label] + [series.label for series in series_list]
    lookup = [series.as_dict() for series in series_list]
    rows = []
    for x_value in xs:
        row = [x_format.format(x_value)]
        for mapping in lookup:
            if x_value in mapping:
                row.append(y_format.format(mapping[x_value]))
            else:
                row.append("-")
        rows.append(row)
    return format_table(headers, rows, title=title)
