"""Allocator tuning for the vectorized replay engine.

The batched replay kernels allocate and free large short-lived numpy
temporaries.  glibc serves big allocations with ``mmap`` and returns them
to the kernel on free, so every reuse pays page-fault and zeroing costs
again -- on the benchmark sweeps this kernel time exceeds the actual
compute.  Raising the mmap/trim thresholds keeps those buffers on the
heap, where they are reused without re-faulting (peak RSS is unchanged;
the same buffers just stay mapped between uses).

Called by the experiment runner, ``repro bench``, and the benchmark
harness; a no-op on platforms without glibc ``mallopt``.
"""

from __future__ import annotations

import ctypes
import ctypes.util

from ..units import GIB

_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3

_applied = False


def tune_allocator(threshold_bytes: int = GIB) -> bool:
    """Keep allocations below ``threshold_bytes`` heap-resident.

    Returns True when the thresholds were applied (glibc only); safe to
    call repeatedly.
    """
    global _applied
    if _applied:
        return True
    try:
        name = ctypes.util.find_library("c") or "libc.so.6"
        libc = ctypes.CDLL(name, use_errno=True)
        mallopt = libc.mallopt
    except (OSError, AttributeError):
        return False
    ok = bool(mallopt(_M_TRIM_THRESHOLD, ctypes.c_int(threshold_bytes)))
    ok = bool(mallopt(_M_MMAP_THRESHOLD, ctypes.c_int(threshold_bytes))) and ok
    _applied = ok
    return ok
