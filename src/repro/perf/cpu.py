"""CPU-only baseline cost model.

The paper's motivation (Sections 1-2.1): fast interconnects let GPUs
"scan tables on a level playing field with CPUs.  However, this does not
lead to a speedup over CPUs in scan-intensive queries, as CPU memory
bandwidth becomes the limiting factor."  The win the paper is after is
*selective* queries, where an index join moves less data.

This module prices the same joins executed by the CPU alone, so
experiments can show all three regimes side by side:

* CPU hash join -- memory-bandwidth bound, the incumbent;
* GPU hash join -- scan capped by the same CPU memory, probe faster;
* GPU windowed INLJ -- transfers less than either, wins at low
  selectivity.

The CPU model is deliberately coarse (a bandwidth/latency roofline, no
NUMA or SMT detail): it exists as a *reference line*, not as a CPU
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.generator import WorkloadConfig
from ..data.zipf import zipf_sum_p2
from ..errors import ConfigurationError
from ..hardware.spec import CpuSpec
from ..units import KEY_BYTES
from .model import QueryCost

#: CPU cacheline granularity: a random 8-16 byte touch moves 64 bytes.
CPU_CACHELINE_BYTES = 64.0

#: Fraction of peak memory bandwidth sustained by dependent random
#: accesses on a multicore CPU (pointer chasing with prefetch batches).
CPU_RANDOM_EFFICIENCY = 0.35

#: Memory accesses per hash-table operation (same structural costs as the
#: GPU table: bucket fetch + value fetch / insert probe).
CPU_HASH_BUILD_ACCESSES = 2.5
CPU_HASH_PROBE_ACCESSES = 4.0

#: Result pair width, matching the GPU operators.
RESULT_PAIR_BYTES = 16.0


@dataclass(frozen=True)
class CpuCostModel:
    """Prices joins executed entirely on the host CPU."""

    cpu: CpuSpec

    def __post_init__(self) -> None:
        if self.cpu.memory_bandwidth_bytes <= 0:
            raise ConfigurationError("CPU spec must have memory bandwidth")

    # ------------------------------------------------------------------
    # Resource times.
    # ------------------------------------------------------------------

    def scan_time(self, num_bytes: float) -> float:
        """Streaming read from CPU memory."""
        if num_bytes < 0:
            raise ConfigurationError(f"bytes must be non-negative: {num_bytes}")
        return num_bytes / self.cpu.memory_bandwidth_bytes

    def random_time(self, num_accesses: float) -> float:
        """Dependent random cacheline accesses to CPU memory."""
        if num_accesses < 0:
            raise ConfigurationError(
                f"accesses must be non-negative: {num_accesses}"
            )
        bandwidth = self.cpu.memory_bandwidth_bytes * CPU_RANDOM_EFFICIENCY
        return num_accesses * CPU_CACHELINE_BYTES / bandwidth

    # ------------------------------------------------------------------
    # Join estimates.
    # ------------------------------------------------------------------

    def hash_join(self, workload: WorkloadConfig) -> QueryCost:
        """CPU hash join: build on S, scan-probe with R.

        Roofline of the streaming component (read both inputs, write the
        result) against the random component (table build + probe); the
        same duplicate-chain model as the GPU baseline applies under skew.
        """
        s_tuples = float(workload.s_tuples)
        r_tuples = float(workload.r_tuples)
        if workload.zipf_theta > 0:
            collision_mass = zipf_sum_p2(
                workload.r_tuples, workload.zipf_theta
            )
        else:
            collision_mass = 1.0 / r_tuples
        sum_c2 = s_tuples + s_tuples * (s_tuples - 1.0) * collision_mass
        capacity = 1.0
        while capacity < s_tuples / 0.5:
            capacity *= 2
        duplicate_chain = max(0.0, (sum_c2 - s_tuples) / (2.0 * 512.0))
        probe_excess = max(0.0, sum_c2 - s_tuples) / (2.0 * capacity)
        stream_bytes = (
            (r_tuples + s_tuples) * KEY_BYTES
            + s_tuples * workload.match_rate * RESULT_PAIR_BYTES
        )
        random_accesses = (
            s_tuples * CPU_HASH_BUILD_ACCESSES
            + duplicate_chain
            + r_tuples * (CPU_HASH_PROBE_ACCESSES + probe_excess)
        )
        seconds = max(
            self.scan_time(stream_bytes), self.random_time(random_accesses)
        )
        return QueryCost(
            seconds=seconds,
            breakdown={
                "stream": self.scan_time(stream_bytes),
                "random": self.random_time(random_accesses),
            },
        )

    def index_join(
        self, workload: WorkloadConfig, accesses_per_lookup: float = 4.0
    ) -> QueryCost:
        """CPU INLJ over an in-memory index.

        CPUs have no 32 GiB TLB wall (huge-page reach covers the machine),
        so the INLJ is simply |S| lookups of a few dependent cacheline
        accesses each -- the structure the GPU beats by sheer random-access
        bandwidth once the interconnect allows it.
        """
        if accesses_per_lookup <= 0:
            raise ConfigurationError(
                f"accesses_per_lookup must be positive: {accesses_per_lookup}"
            )
        s_tuples = float(workload.s_tuples)
        stream_bytes = (
            s_tuples * KEY_BYTES
            + s_tuples * workload.match_rate * RESULT_PAIR_BYTES
        )
        seconds = self.scan_time(stream_bytes) + self.random_time(
            s_tuples * accesses_per_lookup
        )
        return QueryCost(
            seconds=seconds,
            breakdown={
                "stream": self.scan_time(stream_bytes),
                "random": self.random_time(s_tuples * accesses_per_lookup),
            },
        )
