"""Export experiment results to CSV and JSON.

Downstream users replotting the figures (or diffing runs across model
changes) need machine-readable output; the runner's ``--output-dir``
writes one CSV and one JSON document per experiment through this module.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import List

from ..errors import ConfigurationError
from ..ioutil import atomic_write_text


def result_to_rows(result) -> List[dict]:
    """Flatten an ExperimentResult into one dict per (series, point)."""
    rows = []
    for series in result.series:
        for x_value, y_value in zip(series.x, series.y):
            rows.append(
                {
                    "experiment": result.name,
                    "series": series.label,
                    "x": x_value,
                    "y": y_value,
                }
            )
    return rows


def result_to_csv(result) -> str:
    """Render an ExperimentResult as CSV text."""
    rows = result_to_rows(result)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=["experiment", "series", "x", "y"]
    )
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def result_to_json(result) -> str:
    """Render an ExperimentResult (data + metadata) as JSON text."""
    document = {
        "name": result.name,
        "title": result.title,
        "x_label": result.x_label,
        "paper_expectation": result.paper_expectation,
        "notes": list(result.notes),
        "series": [
            {"label": series.label, "x": list(series.x), "y": list(series.y)}
            for series in result.series
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def write_result(result, output_dir) -> List[Path]:
    """Write ``<name>.csv`` and ``<name>.json`` under ``output_dir``."""
    directory = Path(output_dir)
    if directory.exists() and not directory.is_dir():
        raise ConfigurationError(f"{directory} exists and is not a directory")
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = directory / f"{result.name}.csv"
    json_path = directory / f"{result.name}.json"
    atomic_write_text(str(csv_path), result_to_csv(result))
    atomic_write_text(str(json_path), result_to_json(result))
    return [csv_path, json_path]


def load_result_json(path) -> dict:
    """Read back a JSON export (for diffing runs in tests/tools)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
