"""Exception hierarchy for the library.

Every error raised by ``repro`` derives from :class:`ReproError`, so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class CapacityError(ReproError):
    """A simulated memory space ran out of capacity.

    The paper notes that the B+tree and Harmonia reduce the maximum size of
    R "due to memory capacity constraints" (Section 3.2); this error is how
    the simulated allocator reports that situation.
    """


class SimulationError(ReproError):
    """The simulator was driven into an inconsistent state."""


class InjectedFault(ReproError):
    """A deterministic fault raised by :mod:`repro.resilience.faults`.

    Only ever raised when a fault plan is installed (via ``REPRO_FAULTS``
    or programmatically); production runs never see it.  The resilience
    layer treats it like any other transient point failure, which is the
    point: tests drive every retry/requeue path through this one class.
    """


class SweepExecutionError(ReproError):
    """A sweep point kept failing after exhausting its retry budget.

    Carries the final underlying error as ``__cause__``; the experiment
    runner catches this (and any other exception) per experiment and
    converts it into a structured failure-report entry instead of
    aborting the whole run.
    """


class WorkloadError(ReproError):
    """A workload/data-generation request was invalid."""
