"""Exception hierarchy for the library.

Every error raised by ``repro`` derives from :class:`ReproError`, so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class CapacityError(ReproError):
    """A simulated memory space ran out of capacity.

    The paper notes that the B+tree and Harmonia reduce the maximum size of
    R "due to memory capacity constraints" (Section 3.2); this error is how
    the simulated allocator reports that situation.
    """


class SimulationError(ReproError):
    """The simulator was driven into an inconsistent state."""


class WorkloadError(ReproError):
    """A workload/data-generation request was invalid."""
