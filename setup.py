"""Legacy setup shim.

This environment has no ``wheel`` package, so pip cannot perform a PEP-660
editable install; with this shim ``pip install -e .`` falls back to the
classic ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
