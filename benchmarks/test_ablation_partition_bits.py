"""Ablation A1: the partition-bit selection rule of Section 4.2.

The paper chooses radix bits "starting at the bit splitting the root node,
down to the bit above the page size".  This ablation compares that rule
against partitioning on the least significant bits: LSB partitions
scramble keys across the whole relation, so the position locality that
suppresses TLB misses disappears.
"""

import numpy as np

from repro.data.column import VirtualSortedColumn
from repro.partition.bits import PartitionBits, choose_partition_bits
from repro.partition.radix import RadixPartitioner

from conftest import run_once


def mean_position_jump(column, partitioner, keys):
    """Mean |position delta| between consecutive partitioned lookups --
    the locality the TLB sees."""
    output = partitioner.partition(keys)
    positions = column.rank_of(output.keys)
    return float(np.abs(np.diff(positions)).mean())


def run_ablation():
    column = VirtualSortedColumn(2**24, stride=4, seed=13)
    rng = np.random.default_rng(99)
    keys = column.key_at(rng.integers(0, 2**24, size=2**14))
    paper_rule = RadixPartitioner(
        choose_partition_bits(column, 2048, ignored_lsb=4)
    )
    lsb_rule = RadixPartitioner(PartitionBits(shift=0, bits=11))
    return {
        "unpartitioned": float(
            np.abs(np.diff(column.rank_of(keys))).mean()
        ),
        "paper rule": mean_position_jump(column, paper_rule, keys),
        "LSB bits": mean_position_jump(column, lsb_rule, keys),
    }


def test_ablation_partition_bit_choice(benchmark):
    jumps = run_once(benchmark, run_ablation)
    print("\nA1: mean position jump between consecutive lookups (tuples)")
    for label, jump in jumps.items():
        print(f"  {label:>14}: {jump:,.0f}")
    # The paper's rule concentrates consecutive lookups ~1000x better.
    assert jumps["paper rule"] < jumps["unpartitioned"] / 100
    # LSB bits are useless: locality stays at the unpartitioned level.
    assert jumps["LSB bits"] > jumps["unpartitioned"] / 3
