"""Table 1: interconnect receive bandwidths."""

from repro.experiments import table1
from repro.units import GB

from conftest import run_once


def test_table1_interconnects(benchmark):
    text = run_once(benchmark, table1.run)
    print("\n" + text)
    rows = table1.rows()
    bandwidths = [row[2] for row in rows]
    # The paper's exact column (Table 1).
    assert bandwidths == ["32 GB/s", "64 GB/s", "72 GB/s", "75 GB/s", "450 GB/s"]
    # NVLink C2C exceeds typical CPU memory bandwidth -- the property that
    # "eliminates the data transfer bottleneck" (Section 2.1).
    from repro.hardware.spec import GH200_C2C

    assert (
        GH200_C2C.interconnect.bandwidth_bytes
        > GH200_C2C.cpu.memory_bandwidth_bytes
    )
