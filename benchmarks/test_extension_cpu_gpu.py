"""Extension E-CPU: CPU vs GPU regimes across R (paper Sections 1-2.1)."""

from repro.experiments import cpu_gpu

from conftest import BENCH_ORDERED_SIM, run_once


def test_extension_cpu_vs_gpu(benchmark):
    result = run_once(
        benchmark, lambda: cpu_gpu.run(sim=BENCH_ORDERED_SIM)
    )
    print("\n" + result.to_text())
    by_label = result.series_by_label()
    cpu = by_label["CPU hash join"].as_dict()
    inlj = by_label["GPU windowed INLJ (RadixSpline)"].as_dict()
    # The selective index join beats the CPU incumbent at large R...
    assert inlj[100.0] > 2 * cpu[100.0]
    # ...and its advantage *widens* with R: the CPU pays for the whole
    # relation, the index join only for the matches.
    assert inlj[100.0] / cpu[100.0] > 4 * (inlj[2.0] / cpu[2.0])
