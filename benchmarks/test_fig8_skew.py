"""Figure 8: query throughput of skewed lookup keys.

Paper: Zipf exponents 0-1.75, 32 MiB windows, R = 100 GiB.  "Throughput
increases with Zipf exponents higher than 1.0. ... However, the hash join
degrades to a long probe chain.  After 10 hours, we terminated the
measurement run."
"""

from repro.experiments import fig8

from conftest import BENCH_ORDERED_SIM, run_once

THETAS = (0.0, 0.5, 1.0, 1.25, 1.5, 1.75)


def test_fig8_zipf_skew(benchmark):
    result = run_once(
        benchmark,
        lambda: fig8.run(r_gib=100.0, thetas=THETAS, sim=BENCH_ORDERED_SIM),
    )
    print("\n" + result.to_text())

    for series in result.series:
        if series.label == "hash join":
            continue
        data = series.as_dict()
        # Throughput rises for exponents above 1.0 ...
        assert data[1.5] > 1.5 * data[0.0], f"{series.label} gains no skew benefit"
        assert data[1.75] >= data[1.25] * 0.8
        # ... and does not collapse anywhere in the sweep.
        assert min(series.y) > 0.1

    # The hash join DNFs (modeled > 10 h) at high exponents.
    dnf_notes = [note for note in result.notes if "DNF" in note]
    assert any("1.75" in note for note in dnf_notes)
    hash_series = result.series_by_label()["hash join"]
    assert 1.75 not in hash_series.as_dict()
