"""Section 6: the paper's headline claims, measured end-to-end."""

from repro.experiments import claims

from conftest import run_once


def test_section6_claims(benchmark):
    measured = run_once(benchmark, claims.run)
    print()
    for claim in measured:
        print(claim.to_text())
    assert len(measured) == 4
    holding = sum(1 for claim in measured if claim.holds)
    assert holding == len(measured), (
        "a Section 6 claim deviated: "
        + "; ".join(c.name for c in measured if not c.holds)
    )
