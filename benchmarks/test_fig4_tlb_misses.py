"""Figure 4: address-translation requests per index lookup.

Paper: "For small relations, there are near zero translation requests.
However, at the 32 GiB mark, the translation request rate of all INLJs
spikes upwards.  At 111 GiB of data, binary search requests 105
translations per key.  In contrast, Harmonia experiences only 11.3."
"""

from conftest import run_once


def test_fig4_translation_requests(benchmark, naive_sweep):
    __, requests = run_once(benchmark, lambda: naive_sweep)
    print("\n" + requests.to_text(y_format="{:.2f}"))
    by_label = requests.series_by_label()

    for label, series in by_label.items():
        data = series.as_dict()
        # Near zero below the 32 GiB TLB range...
        assert data[16.0] < 1.0, f"{label} misses below the TLB range"
        # ...spiking upwards beyond it.
        assert data[48.0] > 5 * max(data[16.0], 0.05), f"{label} has no spike"

    binary_at_111 = by_label["binary search"].as_dict()[111.0]
    harmonia_at_111 = by_label["Harmonia"].as_dict()[111.0]
    # Paper anchors: ~105 (binary search) vs ~11.3 (Harmonia).
    assert 60 < binary_at_111 < 160
    assert 4 < harmonia_at_111 < 25
    assert binary_at_111 > 4 * harmonia_at_111
