"""Figure 7: impact of the window size on query throughput.

Paper: R fixed at 100 GiB, windows swept 2^18-2^26 tuples (2-512 MiB).
"The throughput of all index structures remains within 2x, indicating that
the GPU TLB does not cause a performance drop."

Known deviation (EXPERIMENTS.md): our model idealizes within-partition
locality, so throughput rises monotonically toward large windows instead
of peaking at 4-52 MiB; the no-TLB-collapse claim and the overall level
match.
"""

from repro.experiments import fig7

from conftest import BENCH_ORDERED_SIM, run_once

WINDOW_TUPLES = tuple(2**exp for exp in range(18, 27, 2))


def test_fig7_window_size_sweep(benchmark):
    result = run_once(
        benchmark,
        lambda: fig7.run(
            r_gib=100.0, window_tuples=WINDOW_TUPLES, sim=BENCH_ORDERED_SIM
        ),
    )
    print("\n" + result.to_text())

    for series in result.series:
        assert len(series) == len(WINDOW_TUPLES)
        # No TLB-induced collapse at any window size: the spread across
        # the sweep stays bounded (paper: within 2x; we allow the model's
        # wider-but-still-bounded spread).
        spread = max(series.y) / min(series.y)
        assert spread < 8.0, f"{series.label} collapses: {spread:.1f}x"
        # Throughput stays in the same band as Fig. 5's partitioned runs.
        assert min(series.y) > 0.1

    by_label = result.series_by_label()
    # RadixSpline stays the fastest at every window size.
    for i in range(len(WINDOW_TUPLES)):
        others = [
            by_label[label].y[i]
            for label in ("binary search", "B+tree", "Harmonia")
        ]
        assert by_label["RadixSpline"].y[i] > max(others)
