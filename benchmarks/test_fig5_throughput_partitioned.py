"""Figure 5: throughput when partitioning the lookup keys.

Paper: "the sudden drop in performance is now remedied. ... At 111 GiB,
the INLJs achieve 0.6, 0.7, 1, and 1.9 Q/s respectively for the B+tree,
the binary search, Harmonia, and the RadixSpline.  This contrasts to
0.2 Q/s for the hash join. ... partitioning speeds up the INLJ by up to
10x over the hash join."
"""

from conftest import run_once

#: The paper's 111 GiB anchors (Q/s); we check the same order of
#: magnitude and the same ranking, not the absolute values.
PAPER_ANCHORS = {
    "B+tree": 0.6,
    "binary search": 0.7,
    "Harmonia": 1.0,
    "RadixSpline": 1.9,
    "hash join": 0.2,
}


def test_fig5_partitioned_inlj(benchmark, partitioned_sweep):
    throughput, __ = run_once(benchmark, lambda: partitioned_sweep)
    print("\n" + throughput.to_text())
    by_label = throughput.series_by_label()

    # The cliff is gone: no index loses more than ~2.5x crossing 32 GiB.
    for label in ("binary search", "B+tree", "Harmonia", "RadixSpline"):
        data = by_label[label].as_dict()
        assert data[32.0] / data[48.0] < 2.5, f"{label} still has a cliff"

    # All INLJs beat the hash join at 111 GiB, by 3-10x for the best.
    at_111 = {
        label: series.as_dict()[111.0] for label, series in by_label.items()
    }
    for label, anchor in PAPER_ANCHORS.items():
        measured = at_111[label]
        # Same order of magnitude as the paper's anchor.
        assert anchor / 4 < measured < anchor * 4, (
            f"{label}: {measured:.2f} Q/s vs paper {anchor}"
        )
    speedup = at_111["RadixSpline"] / at_111["hash join"]
    assert 5.0 < speedup < 15.0  # paper: "up to 10x"

    # Ranking: RadixSpline > Harmonia > {binary search, B+tree}.
    assert at_111["RadixSpline"] > at_111["Harmonia"]
    assert at_111["Harmonia"] > at_111["binary search"]
    assert at_111["Harmonia"] > at_111["B+tree"]
