"""Ablation A6: to partition, or not to partition (Section 2.3).

The paper dismisses classic partitioned joins: "with some exceptions,
partitioned joins are detrimental to overall query performance [13].  On
top, partitioning both inputs consumes additional memory equal to the
input size."  This ablation prices all three strategies -- plain hash
join, radix-partitioned hash join, and the paper's windowed INLJ -- at
out-of-core scale.
"""

from repro.experiments.common import (
    default_partitioner,
    gib_to_tuples,
    make_environment,
)
from repro.hardware.spec import V100_NVLINK2
from repro.indexes.radix_spline import RadixSplineIndex
from repro.join.hash_join import HashJoin
from repro.join.partitioned_hash import PartitionedHashJoin
from repro.join.window import WindowedINLJ
from repro.units import MIB

from conftest import BENCH_ORDERED_SIM, run_once

R_GIB = 64.0


def run_ablation():
    results = {}
    env = make_environment(
        V100_NVLINK2, gib_to_tuples(R_GIB), sim=BENCH_ORDERED_SIM
    )
    results["hash join"] = HashJoin(env.relation).estimate(env)
    env = make_environment(
        V100_NVLINK2, gib_to_tuples(R_GIB), sim=BENCH_ORDERED_SIM
    )
    results["partitioned hash join"] = PartitionedHashJoin(
        env.relation, default_partitioner(env.relation.column)
    ).estimate(env)
    env = make_environment(
        V100_NVLINK2,
        gib_to_tuples(R_GIB),
        index_cls=RadixSplineIndex,
        sim=BENCH_ORDERED_SIM,
    )
    results["windowed INLJ (RadixSpline)"] = WindowedINLJ(
        env.index, default_partitioner(env.column), window_bytes=32 * MIB
    ).estimate(env)
    return results


def test_ablation_partitioned_join(benchmark):
    results = run_once(benchmark, run_ablation)
    print(f"\nA6: join-strategy comparison at R = {R_GIB:g} GiB")
    for name, cost in results.items():
        print(
            f"  {name:<28}: {cost.queries_per_second:5.2f} Q/s, "
            f"{cost.counters.scan_bytes / 2**30:6.1f} GiB scanned"
        )
    hash_join = results["hash join"].queries_per_second
    partitioned = results["partitioned hash join"].queries_per_second
    windowed = results["windowed INLJ (RadixSpline)"].queries_per_second
    # Partitioning both inputs is detrimental (Section 2.3 / [13])...
    assert partitioned < hash_join
    # ...while the windowed INLJ pipelines and wins at this selectivity.
    assert windowed > hash_join
