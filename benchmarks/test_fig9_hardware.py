"""Figure 9: PCIe 4.0 (A100) vs NVLink 2.0 (V100).

Paper: "The hash join achieves 1.7x higher throughput on the A100, as it
is a faster GPU.  Therefore, the crossover point of INLJ vs hash join on
the A100 is at 13.9 GiB (3.6%), compared to 6.2 GiB (8.0%) on the V100."
"""

from repro.experiments import fig9

from conftest import BENCH_ORDERED_SIM, run_once

R_SIZES = (2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0)


def test_fig9_hardware_comparison(benchmark):
    result = run_once(
        benchmark,
        lambda: fig9.run(r_sizes_gib=R_SIZES, sim=BENCH_ORDERED_SIM),
    )
    print("\n" + result.to_text())
    by_label = result.series_by_label()

    nvlink_inlj = by_label["RadixSpline [NVLink 2.0]"]
    nvlink_hash = by_label["hash join [NVLink 2.0]"]
    pcie_inlj = by_label["RadixSpline [PCI-e 4.0]"]
    pcie_hash = by_label["hash join [PCI-e 4.0]"]

    v100_crossover = fig9.find_crossover(nvlink_inlj, nvlink_hash)
    a100_crossover = fig9.find_crossover(pcie_inlj, pcie_hash)
    print(
        f"\ncrossovers: V100 {v100_crossover and round(v100_crossover, 1)} GiB "
        f"(paper 6.2), A100 {a100_crossover and round(a100_crossover, 1)} GiB "
        f"(paper 13.9)"
    )

    # Both crossovers exist, in the same zone as the paper's.
    assert v100_crossover is not None and 3.0 < v100_crossover < 20.0
    assert a100_crossover is not None and 8.0 < a100_crossover < 50.0
    # The crossover moves right on PCIe (needs lower selectivity).
    assert a100_crossover > 1.3 * v100_crossover

    # Hash join faster on the A100 (paper: ~1.7x) at matched R.
    ratios = [
        pcie / nvlink
        for pcie, nvlink in zip(pcie_hash.y, nvlink_hash.y)
    ]
    assert all(ratio > 1.05 for ratio in ratios)
    assert max(ratios) < 3.0

    # INLJ slower over PCIe at every size (fine-grained access penalty).
    for pcie, nvlink in zip(pcie_inlj.y, nvlink_inlj.y):
        assert pcie < nvlink
