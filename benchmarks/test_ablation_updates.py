"""Ablation A8: index maintenance cost (Section 6's update guidance).

"We recommend choosing a RadixSpline ... However, Harmonia is a good
alternative if the index must support inserts and updates."  This
ablation prices a 10k-insert batch into each index at R = 100 GiB.
"""

from repro.data.column import VirtualSortedColumn
from repro.data.relation import Relation
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import ALL_INDEX_TYPES
from repro.units import GIB
from repro.workloads.updates import maintenance_cost

from conftest import run_once

BATCH = 10_000


def run_ablation():
    rows = {}
    relation = Relation("R", VirtualSortedColumn(int(100 * GIB) // 8))
    for index_cls in ALL_INDEX_TYPES:
        index = index_cls(relation)
        rows[index_cls.name] = maintenance_cost(
            index, BATCH, V100_NVLINK2.cpu
        )
    return rows


def test_ablation_index_maintenance(benchmark):
    rows = run_once(benchmark, run_ablation)
    print(f"\nA8: cost of a {BATCH}-insert batch at R = 100 GiB")
    for name, cost in rows.items():
        print(
            f"  {name:>14}: {cost.seconds_per_batch:9.3f} s/batch "
            f"({cost.strategy}), "
            f"{cost.amortized_seconds_per_insert(BATCH) * 1e6:9.1f} us/insert"
        )
    # Tree indexes absorb batches in-place; static structures rebuild.
    assert rows["Harmonia"].strategy == "in-place"
    assert rows["B+tree"].strategy == "in-place"
    assert rows["RadixSpline"].strategy == "rebuild"
    assert rows["binary search"].strategy == "rebuild"
    # The guidance is quantitative: in-place maintenance is orders of
    # magnitude cheaper than a 100 GiB refit.
    assert (
        rows["RadixSpline"].seconds_per_batch
        > 100 * rows["Harmonia"].seconds_per_batch
    )
