"""Ablation A2: Harmonia's sub-warp size.

Harmonia splits each warp into sub-warps that cooperate on one lookup at
a time (Section 2.2): "As some comparisons are unnecessary, Harmonia
divides the warp into sub-warps to parallelize over lookup keys as well."

With uniform traversal heights the total comparison work is constant in
the sub-warp size (``rounds_per_node x subwarps`` cancels), so this
ablation probes the two quantities the choice actually trades off:

* divergence overhead under *filter divergence* (Section 3.3.1): a warp
  whose lookups take different step counts.  Sub-warps serialize several
  lookups per lane group, so their sums concentrate and the overhead
  falls as the sub-warp widens;
* lookup parallelism: a warp serves ``32 / subwarp`` concurrent lookups,
  which shrinks as the sub-warp widens.
"""

import numpy as np

from repro.gpu.simt import subwarp_lookup_cost

from conftest import run_once

SUBWARP_SIZES = (2, 4, 8, 16, 32)


def run_ablation():
    # Bimodal step counts emulating a selective join's filter divergence:
    # 70% of lookups finish in 4 node visits, 30% take 8.
    rng = np.random.default_rng(17)
    steps = np.where(rng.random(32 * 256) < 0.7, 4.0, 8.0)
    rows = {}
    for subwarp in SUBWARP_SIZES:
        cost = subwarp_lookup_cost(steps, 32, subwarp_size=subwarp)
        overhead = cost.divergence_replays / max(1.0, cost.warp_instructions)
        rows[subwarp] = (overhead, 32 // subwarp)
    return rows


def test_ablation_harmonia_subwarp_size(benchmark):
    rows = run_once(benchmark, run_ablation)
    print("\nA2: Harmonia sub-warp size under filter divergence")
    for subwarp, (overhead, parallel) in rows.items():
        print(
            f"  sub-warp {subwarp:>2}: divergence overhead "
            f"{overhead * 100:5.1f}%, {parallel:>2} concurrent lookups/warp"
        )
    overheads = [overhead for overhead, __ in rows.values()]
    parallelism = [parallel for __, parallel in rows.values()]
    # Wider sub-warps concentrate sums -> less divergence overhead...
    assert all(a >= b - 1e-9 for a, b in zip(overheads, overheads[1:]))
    assert overheads[0] > overheads[-1]
    # ...but serve fewer concurrent lookups (the latency-hiding cost).
    assert parallelism == sorted(parallelism, reverse=True)
