"""Benchmark harness configuration.

Each benchmark module regenerates one of the paper's tables/figures and
prints the same rows/series the paper reports.  The experiment sweeps are
deterministic cost-model evaluations, so every benchmark runs exactly once
(``pedantic(rounds=1, iterations=1)``); the interesting output is the
figure itself, not timing variance.

Shared, expensive sweeps (the naive Fig. 3/4 simulation) are cached at
session scope so Figs. 3, 4, and 6 do not re-simulate, and the repro
session cache (:mod:`repro.experiments.cache`) is enabled for the whole
benchmark session so identical environments and sweep points across
modules are built and simulated once.  The sweep constants live in
:mod:`repro.experiments.bench` so ``repro bench`` measures the same
workload as this harness.
"""

from __future__ import annotations

import pytest

from repro.experiments import cache, fig3, fig5
from repro.experiments.bench import (
    BENCH_NAIVE_SIM,
    BENCH_ORDERED_SIM,
    BENCH_R_SIZES_GIB,
)

__all__ = ["BENCH_NAIVE_SIM", "BENCH_ORDERED_SIM", "BENCH_R_SIZES_GIB"]


@pytest.fixture(scope="session", autouse=True)
def _session_cache():
    """Share environments and point results across benchmark modules."""
    from repro.perf.alloc import tune_allocator

    tune_allocator()
    with cache.session():
        yield
    cache.clear()


def run_once(benchmark, func):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def naive_sweep():
    """Fig. 3 + Fig. 4 data (one expensive simulation, shared)."""
    return fig3.run(r_sizes_gib=BENCH_R_SIZES_GIB, sim=BENCH_NAIVE_SIM)


@pytest.fixture(scope="session")
def partitioned_sweep():
    """Fig. 5 data plus partitioned request rates (shared with Fig. 6)."""
    return fig5.run(r_sizes_gib=BENCH_R_SIZES_GIB, sim=BENCH_ORDERED_SIM)
