"""Benchmark harness configuration.

Each benchmark module regenerates one of the paper's tables/figures and
prints the same rows/series the paper reports.  The experiment sweeps are
deterministic cost-model evaluations, so every benchmark runs exactly once
(``pedantic(rounds=1, iterations=1)``); the interesting output is the
figure itself, not timing variance.

Shared, expensive sweeps (the naive Fig. 3/4 simulation) are cached at
session scope so Figs. 3, 4, and 6 do not re-simulate.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.experiments import fig3, fig5

#: R sizes used by the benchmark sweeps: the paper's range with the
#: quoted 111 GiB endpoint (full grid costs minutes, this costs ~2).
BENCH_R_SIZES_GIB = (1.0, 8.0, 16.0, 32.0, 48.0, 111.0)

#: Naive (random-order) runs need wide samples for TLB thrashing; ordered
#: runs use the analytic TLB and sample less.
BENCH_NAIVE_SIM = SimulationConfig(probe_sample=2**15)
BENCH_ORDERED_SIM = SimulationConfig(probe_sample=2**13)


def run_once(benchmark, func):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def naive_sweep():
    """Fig. 3 + Fig. 4 data (one expensive simulation, shared)."""
    return fig3.run(r_sizes_gib=BENCH_R_SIZES_GIB, sim=BENCH_NAIVE_SIM)


@pytest.fixture(scope="session")
def partitioned_sweep():
    """Fig. 5 data plus partitioned request rates (shared with Fig. 6)."""
    return fig5.run(r_sizes_gib=BENCH_R_SIZES_GIB, sim=BENCH_ORDERED_SIM)
