"""Ablation A9: 1 GiB vs 2 MiB OS huge pages (Section 3.2 remark).

"The machine is set up to use 1 GiB huge pages.  We found that using huge
pages of this size improves the repetition accuracy of our experiments
compared to 2 MiB, although performance is approximately equal."

In the model the GPU MMU translates at its own granule regardless of the
OS page size, so throughput should come out approximately equal -- which
is the paper's observation.
"""

import pytest

from repro.experiments.common import (
    default_partitioner,
    gib_to_tuples,
    make_environment,
)
from repro.hardware.spec import V100_NVLINK2
from repro.indexes.radix_spline import RadixSplineIndex
from repro.join.inlj import IndexNestedLoopJoin
from repro.join.window import WindowedINLJ
from repro.units import MIB

from conftest import BENCH_NAIVE_SIM, BENCH_ORDERED_SIM, run_once

PAGE_SIZES = {"1 GiB pages": 2**30, "2 MiB pages": 2 * MIB}


def run_ablation():
    rows = {}
    for label, page_bytes in PAGE_SIZES.items():
        spec = V100_NVLINK2.with_huge_pages(page_bytes)
        env = make_environment(
            spec, gib_to_tuples(48.0), index_cls=RadixSplineIndex,
            sim=BENCH_ORDERED_SIM,
        )
        windowed = WindowedINLJ(
            env.index, default_partitioner(env.column), window_bytes=32 * MIB
        ).estimate(env)
        env = make_environment(
            spec, gib_to_tuples(48.0), index_cls=RadixSplineIndex,
            sim=BENCH_NAIVE_SIM,
        )
        naive = IndexNestedLoopJoin(env.index).estimate(env)
        rows[label] = (windowed.queries_per_second, naive.queries_per_second)
    return rows


def test_ablation_huge_page_size(benchmark):
    rows = run_once(benchmark, run_ablation)
    print("\nA9: OS huge-page size (RadixSpline, R = 48 GiB)")
    for label, (windowed, naive) in rows.items():
        print(f"  {label}: windowed {windowed:5.2f} Q/s, naive {naive:5.2f} Q/s")
    big_w, big_n = rows["1 GiB pages"]
    small_w, small_n = rows["2 MiB pages"]
    # "performance is approximately equal" (Section 3.2).
    assert big_w == pytest.approx(small_w, rel=0.05)
    assert big_n == pytest.approx(small_n, rel=0.05)

