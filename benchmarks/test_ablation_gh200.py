"""Ablation A5: a GH200-class what-if (Table 1 extrapolation).

The paper's Table 1 ends with NVLink C2C at 450 GB/s -- beyond the CPU's
own memory bandwidth.  This ablation runs the windowed INLJ and the hash
join on the GH200 preset to ask whether the paper's conclusion (index
joins win at low selectivity) strengthens on the next hardware generation.
"""

from repro.experiments.common import (
    default_partitioner,
    gib_to_tuples,
    make_environment,
)
from repro.hardware.spec import GH200_C2C, V100_NVLINK2
from repro.indexes.radix_spline import RadixSplineIndex
from repro.join.hash_join import HashJoin
from repro.join.window import WindowedINLJ
from repro.units import MIB

from conftest import BENCH_ORDERED_SIM, run_once


def run_ablation():
    rows = {}
    for spec in (V100_NVLINK2, GH200_C2C):
        env = make_environment(
            spec,
            gib_to_tuples(100.0),
            index_cls=RadixSplineIndex,
            sim=BENCH_ORDERED_SIM,
        )
        join = WindowedINLJ(
            env.index, default_partitioner(env.column), window_bytes=32 * MIB
        )
        inlj = join.estimate(env).queries_per_second
        hash_env = make_environment(
            spec, gib_to_tuples(100.0), sim=BENCH_ORDERED_SIM
        )
        hash_join = HashJoin(hash_env.relation).estimate(hash_env)
        rows[spec.name] = (inlj, hash_join.queries_per_second)
    return rows


def test_ablation_gh200_extrapolation(benchmark):
    rows = run_once(benchmark, run_ablation)
    print("\nA5: GH200-class what-if at R = 100 GiB")
    for name, (inlj, hash_join) in rows.items():
        print(
            f"  {name}: windowed RadixSpline INLJ {inlj:6.2f} Q/s, "
            f"hash join {hash_join:5.2f} Q/s ({inlj / hash_join:.1f}x)"
        )
    v100_inlj, v100_hash = rows["POWER9 + V100 / NVLink 2.0"]
    gh200_inlj, gh200_hash = rows["GH200 / NVLink C2C"]
    # Both joins speed up generationally...
    assert gh200_inlj > 2 * v100_inlj
    assert gh200_hash > v100_hash
    # ...and the index join's advantage persists.
    assert gh200_inlj > 2 * gh200_hash
