"""Ablation A7: sorted probe keys vs windowed partitioning (Section 4.1).

The paper credits Harmonia with the observation that sorting lookup keys
improves traversal locality, and notes "fully sorting the keys is not
necessary".  This ablation quantifies that: a fully sorted probe stream is
the locality upper bound, and windowed partitioning -- which never sorts,
never materializes -- should recover most of it, while the plain stream
order collapses.
"""

from repro.experiments.common import (
    default_partitioner,
    gib_to_tuples,
    make_environment,
)
from repro.hardware.spec import V100_NVLINK2
from repro.indexes.radix_spline import RadixSplineIndex
from repro.join.inlj import IndexNestedLoopJoin
from repro.join.window import WindowedINLJ
from repro.units import MIB

from conftest import BENCH_NAIVE_SIM, BENCH_ORDERED_SIM, run_once

R_GIB = 100.0


def run_ablation():
    results = {}
    env = make_environment(
        V100_NVLINK2, gib_to_tuples(R_GIB), index_cls=RadixSplineIndex,
        sim=BENCH_NAIVE_SIM,
    )
    results["stream order (naive)"] = IndexNestedLoopJoin(
        env.index, probe_order="stream"
    ).estimate(env)
    env = make_environment(
        V100_NVLINK2, gib_to_tuples(R_GIB), index_cls=RadixSplineIndex,
        sim=BENCH_ORDERED_SIM,
    )
    results["fully sorted (upper bound)"] = IndexNestedLoopJoin(
        env.index, probe_order="sorted"
    ).estimate(env)
    env = make_environment(
        V100_NVLINK2, gib_to_tuples(R_GIB), index_cls=RadixSplineIndex,
        sim=BENCH_ORDERED_SIM,
    )
    results["windowed partitioning (32 MiB)"] = WindowedINLJ(
        env.index, default_partitioner(env.column), window_bytes=32 * MIB
    ).estimate(env)
    return results


def test_ablation_sorted_probes(benchmark):
    results = run_once(benchmark, run_ablation)
    print(f"\nA7: probe-order ablation (RadixSpline, R = {R_GIB:g} GiB)")
    for name, cost in results.items():
        print(
            f"  {name:<30}: {cost.queries_per_second:5.2f} Q/s, "
            f"{cost.counters.translation_requests_per_lookup:7.4f} "
            "requests/lookup"
        )
    stream = results["stream order (naive)"].queries_per_second
    sorted_bound = results["fully sorted (upper bound)"].queries_per_second
    windowed = results["windowed partitioning (32 MiB)"].queries_per_second
    # Sorting is a large win over the stream order...
    assert sorted_bound > 3 * stream
    # ...and windowed partitioning recovers most of the bound without
    # sorting or materializing ("fully sorting is not necessary").
    assert windowed > 0.5 * sorted_bound
    assert windowed <= sorted_bound * 1.05
