"""Figure 6: percentage of translation requests eliminated by partitioning.

Paper: "The improvement at the TLB range boundary is nearly 100%. ...
binary search still experiences about 0.1 translation requests per lookup.
However, the other indexes have almost zero requests per key."
"""

from repro.experiments import fig6

from conftest import run_once


def test_fig6_translation_requests_eliminated(
    benchmark, naive_sweep, partitioned_sweep
):
    __, naive_requests = naive_sweep
    __, partitioned_requests = partitioned_sweep

    result = run_once(
        benchmark,
        lambda: fig6.run(
            naive_requests=naive_requests,
            partitioned_requests=partitioned_requests,
        ),
    )
    print("\n" + result.to_text(y_format="{:.2f}"))

    partitioned_by_label = partitioned_requests.series_by_label()
    for series in result.series:
        data = series.as_dict()
        # Nearly 100% eliminated at and beyond the TLB boundary.
        for x_value in (48.0, 111.0):
            assert data[x_value] > 95.0, (
                f"{series.label}: only {data[x_value]:.1f}% eliminated at "
                f"{x_value} GiB"
            )
        # Residual request rates stay tiny (paper: <= ~0.1 per lookup).
        residual = partitioned_by_label[series.label].as_dict()[111.0]
        assert residual < 0.5

    # Binary search keeps the largest residual of all indexes.
    residuals = {
        label: series.as_dict()[111.0]
        for label, series in partitioned_by_label.items()
    }
    assert residuals["binary search"] == max(residuals.values())
