"""Ablation A3: B+tree node size.

Section 3.1 discusses the trade-off: "Using smaller nodes has also been
suggested, but has the disadvantage that fewer keys fit into each node.
As a result, the tree grows in height, in turn leading to more tree levels
being traversed."  This ablation sweeps the node size in a windowed INLJ
at 48 GiB.
"""

from repro.experiments.common import (
    default_partitioner,
    gib_to_tuples,
    make_environment,
)
from repro.hardware.spec import V100_NVLINK2
from repro.indexes.btree import BPlusTreeIndex
from repro.join.window import WindowedINLJ
from repro.units import MIB

from conftest import BENCH_ORDERED_SIM, run_once

NODE_SIZES = (256, 1024, 4096, 16384)


def run_ablation():
    rows = {}
    for node_bytes in NODE_SIZES:
        env = make_environment(
            V100_NVLINK2,
            gib_to_tuples(48.0),
            index_cls=BPlusTreeIndex,
            sim=BENCH_ORDERED_SIM,
            index_kwargs={"node_bytes": node_bytes},
        )
        join = WindowedINLJ(
            env.index, default_partitioner(env.column), window_bytes=32 * MIB
        )
        cost = join.estimate(env)
        rows[node_bytes] = (env.index.height, cost.queries_per_second)
    return rows


def test_ablation_btree_node_size(benchmark):
    rows = run_once(benchmark, run_ablation)
    print("\nA3: B+tree node size at R = 48 GiB (windowed INLJ)")
    for node_bytes, (height, throughput) in rows.items():
        print(f"  {node_bytes:>6} B nodes: height {height}, {throughput:5.2f} Q/s")
    heights = [height for height, __ in rows.values()]
    # Smaller nodes make taller trees (Section 3.1).
    assert heights == sorted(heights, reverse=True)
    # All configurations stay within a sane factor of the paper's 4 KiB.
    throughputs = [throughput for __, throughput in rows.values()]
    assert max(throughputs) / min(throughputs) < 5.0
