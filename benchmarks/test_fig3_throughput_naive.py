"""Figure 3: naive INLJ vs hash join throughput while scaling R.

Paper: "The INLJ does not outperform the hash join, even at the low
selectivities incurred by a large R relation. ... the INLJ experiences a
sudden drop in throughput when R grows beyond 32 GiB.  In contrast, hash
join throughput does not drop suddenly."
"""

from conftest import run_once


def test_fig3_naive_inlj_vs_hash_join(benchmark, naive_sweep):
    throughput, __ = run_once(benchmark, lambda: naive_sweep)
    print("\n" + throughput.to_text())
    by_label = throughput.series_by_label()
    hash_join = by_label["hash join"].as_dict()

    # Claim 1: no INLJ outperforms the hash join anywhere in the sweep.
    for series in throughput.series:
        if series.label == "hash join":
            continue
        for x_value, y_value in zip(series.x, series.y):
            assert y_value <= hash_join[x_value] * 1.05, (
                f"{series.label} beat the hash join at {x_value} GiB"
            )

    # Claim 2: the INLJs drop suddenly past the 32 GiB TLB range.
    binary = by_label["binary search"].as_dict()
    assert binary[32.0] > 2 * binary[48.0]

    # Claim 3: the hash join declines smoothly -- roughly proportional to
    # the growing transfer volume, never faster than the data growth
    # between adjacent points (no cliff).
    hash_values = by_label["hash join"]
    for i in range(len(hash_values.y) - 1):
        drop = hash_values.y[i] / hash_values.y[i + 1]
        growth = hash_values.x[i + 1] / hash_values.x[i]
        assert drop < growth * 1.5
