"""Ablation A4: concurrent kernel execution (Section 5.1).

"If kernels were to run consecutively, the interconnect would be
underutilized.  Therefore, we achieve transfer-compute overlap by
permitting the GPU to execute two CUDA streams simultaneously."
"""

from repro.experiments.common import (
    default_partitioner,
    gib_to_tuples,
    make_environment,
)
from repro.hardware.spec import V100_NVLINK2
from repro.indexes.radix_spline import RadixSplineIndex
from repro.join.window import WindowedINLJ
from repro.units import KEY_BYTES, MIB

from conftest import BENCH_ORDERED_SIM, run_once

WINDOW_TUPLES = (2**18, 2**20, 2**22)


def run_ablation():
    rows = {}
    for tuples in WINDOW_TUPLES:
        throughputs = []
        for overlap in (True, False):
            env = make_environment(
                V100_NVLINK2,
                gib_to_tuples(100.0),
                index_cls=RadixSplineIndex,
                sim=BENCH_ORDERED_SIM,
            )
            join = WindowedINLJ(
                env.index,
                default_partitioner(env.column),
                window_bytes=tuples * KEY_BYTES,
                overlap=overlap,
            )
            throughputs.append(join.estimate(env).queries_per_second)
        rows[tuples] = tuple(throughputs)
    return rows


def test_ablation_concurrent_kernels(benchmark):
    rows = run_once(benchmark, run_ablation)
    print("\nA4: two-stream overlap on/off (RadixSpline, R = 100 GiB)")
    for tuples, (overlapped, serial) in rows.items():
        gain = overlapped / serial
        print(
            f"  window {tuples * KEY_BYTES // MIB:>3} MiB: "
            f"overlap {overlapped:5.2f} Q/s, serial {serial:5.2f} Q/s "
            f"({gain:.2f}x)"
        )
    for overlapped, serial in rows.values():
        assert overlapped >= serial  # overlap never hurts
    # The partition stage is a small share of each window (the probe's
    # random fetches dominate), so the gain is modest but consistent.
    gains = [overlapped / serial for overlapped, serial in rows.values()]
    assert all(1.0 <= gain < 1.5 for gain in gains)
